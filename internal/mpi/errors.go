package mpi

import (
	"errors"
	"fmt"
	"strings"

	"yhccl/internal/fault"
	"yhccl/internal/sim"
)

// RankStatus is the diagnostic snapshot of one rank at the moment a run
// failed: where it was pinned, what operation it had declared via SetOp,
// its lifecycle state and virtual clock, and — when blocked — what it was
// waiting on.
type RankStatus struct {
	Rank    int
	Core    int
	Op      string
	State   string
	Clock   float64
	Blocked string
}

func (s RankStatus) String() string {
	b := fmt.Sprintf("rank%d@core%d", s.Rank, s.Core)
	if s.Op != "" {
		b += " in " + s.Op
	}
	b += fmt.Sprintf(" [%s t=%g]", s.State, s.Clock)
	if s.Blocked != "" {
		b += " waiting on " + s.Blocked
	}
	return b
}

// RunError is the failure report of a Machine.Run: the underlying simulator
// diagnosis (deadlock, livelock, or an attributed proc panic), the per-rank
// status snapshot taken at failure time, and — when a fault plan was active —
// the plan name and every fault the injector actually fired. The underlying
// error is reachable through Unwrap, so errors.As finds *sim.DeadlockError,
// *sim.LivelockError, *sim.ProcPanic, or *sim.InjectedCrash beneath it.
type RunError struct {
	Err    error
	Plan   string
	Ranks  []RankStatus
	Faults []fault.Event
}

func (e *RunError) Error() string {
	msg := fmt.Sprintf("mpi: run failed: %v", e.Err)
	if e.Plan != "" {
		msg += fmt.Sprintf(" [fault plan %q]", e.Plan)
	}
	return msg
}

func (e *RunError) Unwrap() error { return e.Err }

// Diagnose renders the full multi-line post-mortem: the failure, every
// rank's status, and the faults that fired.
func (e *RunError) Diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Error())
	for _, rs := range e.Ranks {
		fmt.Fprintf(&b, "  %s\n", rs)
	}
	for _, ev := range e.Faults {
		fmt.Fprintf(&b, "  fired: %s\n", ev)
	}
	return strings.TrimRight(b.String(), "\n")
}

// EpochError reports an operation issued through a communicator that was
// built under an earlier membership epoch than the machine's current one —
// after a Quarantine, Shrink or Grow its flags, segments and pipes belong to
// a membership that no longer exists. Raised as a panic from the stale
// communicator's resource accessors; inside Machine.Run it surfaces through
// the usual *RunError attribution.
type EpochError struct {
	Comm    string // communicator label
	Stale   int    // epoch the communicator was built under
	Current int    // machine's current membership epoch
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("mpi: stale communicator %q: built at epoch %d, machine is at epoch %d (membership changed; re-acquire communicators from the machine)",
		e.Comm, e.Stale, e.Current)
}

// TimeoutError reports a bounded receive that expired before the matching
// send produced enough data, including how far the message had progressed —
// the difference between "sender never arrived" and "sender died mid-message".
type TimeoutError struct {
	Rank    int
	Op      string
	Comm    string
	Src     int // global rank of the expected sender
	Done    int64
	Total   int64
	Timeout float64
	Clock   float64
}

func (e *TimeoutError) Error() string {
	op := e.Op
	if op == "" {
		op = "recv"
	}
	return fmt.Sprintf("mpi: rank%d %s on %s: recv from rank%d timed out after %g virtual seconds at t=%g (%d of %d elems received)",
		e.Rank, op, e.Comm, e.Src, e.Timeout, e.Clock, e.Done, e.Total)
}

// wrapRunError converts a simulator failure into a RunError carrying the
// machine-level context: rank/core/op attribution for every proc in the
// failure snapshot, plus the active fault plan's fired events.
func (m *Machine) wrapRunError(cause error) *RunError {
	re := &RunError{Err: cause}
	if m.inject != nil {
		re.Plan = m.inject.Plan().Name
		re.Faults = append([]fault.Event(nil), m.inject.Events()...)
	}
	var sts []sim.ProcStatus
	var pp *sim.ProcPanic
	var dl *sim.DeadlockError
	var ll *sim.LivelockError
	switch {
	case errors.As(cause, &pp):
		sts = pp.Snapshot
	case errors.As(cause, &dl):
		sts = dl.Blocked
	case errors.As(cause, &ll):
		sts = ll.Procs
	}
	for _, st := range sts {
		rs := RankStatus{
			Rank:    st.ID,
			State:   st.State.String(),
			Clock:   st.Clock,
			Blocked: st.Reason,
		}
		if st.ID >= 0 && st.ID < len(m.RankCores) {
			rs.Core = m.RankCores[st.ID]
		}
		if st.ID >= 0 && st.ID < len(m.rankOps) {
			rs.Op = m.rankOps[st.ID]
		}
		re.Ranks = append(re.Ranks, rs)
	}
	return re
}
