package mpi

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/shm"
)

// DefaultP2PChunkElems is the pipeline chunk of shared-memory send/recv
// (8192 float64 = 64 KB), matching the eager-path chunking of mainstream
// MPI shared-memory BTLs.
const DefaultP2PChunkElems = 8192

// chanState is the persistent shared-memory pipe between an ordered pair of
// ranks: a message-sized staging segment plus produced/consumed flags.
//
// Send is buffered (eager): the sender copies the whole message into
// staging chunk by chunk without waiting for the receiver, publishing each
// chunk through the produced flag; the receiver pipelines copy-out at chunk
// granularity. Backpressure is one message deep: a sender must wait for the
// receiver to finish draining the previous message before overwriting
// staging. This mirrors how a single-threaded MPI process actually executes
// a sendrecv (copy-in then copy-out, overlap across ranks, not within one)
// and keeps rings parallel rather than serializing them.
//
// All counters are absolute across the communicator's lifetime, so channels
// are reused by consecutive operations without resetting flags — the
// standard epoch trick of shared-memory transports.
type chanState struct {
	staging  *memmodel.Buffer
	produced *shm.Flag // chunks ever published by the sender
	consumed *shm.Flag // messages ever fully drained by the receiver
	chunk    int64     // elements per chunk
	sent     int64     // chunks ever published
	rcvd     int64     // chunks ever consumed
	inMsg    int64     // chunks consumed of a partially-received message (RecvTimeout)
	msgsSent int64
	msgsRcvd int64
	gen      int // staging regrow generation
}

func p2pKey(src, dst int) string { return fmt.Sprintf("p2p/%d->%d", src, dst) }

// channel returns the pipe for messages from comm rank src to comm rank
// dst, creating it on first use. Staging is homed on the sender's socket
// (the sender first-touches it with copy-in) and grows to the largest
// message seen.
func (c *Comm) channel(src, dst int, elems int64) *chanState {
	c.check()
	key := p2pKey(src, dst)
	ch, ok := c.p2p[key]
	if !ok {
		ch = &chanState{
			produced: shm.NewFlag(c.machine.Model, key+"/produced", c.CoreOf(src)),
			consumed: shm.NewFlag(c.machine.Model, key+"/consumed", c.CoreOf(dst)),
			chunk:    DefaultP2PChunkElems,
		}
		c.p2p[key] = ch
	}
	if ch.staging == nil || ch.staging.Elems < elems {
		size := int64(DefaultP2PChunkElems)
		for size < elems {
			size *= 2
		}
		ch.gen++
		ch.staging = c.SharedPinned(fmt.Sprintf("%s/staging@%d", key, ch.gen), c.SocketOf(src), size)
	}
	return ch
}

// Send transmits n elements of buf starting at off to comm rank dst using
// the classic two-copy shared-memory path: the sender copies the message
// into staging (copy-in), the receiver copies it out. The send is buffered:
// it completes once the message is staged, waiting only for the previous
// message on this channel to have been drained. Matching Recv/RecvReduce
// calls must agree on n.
func (r *Rank) Send(c *Comm, dst int, buf *memmodel.Buffer, off, n int64) {
	me := c.CommRank(r.id)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", r.id, c.Name()))
	}
	if dst == me {
		panic("mpi: send to self")
	}
	if n <= 0 {
		panic("mpi: send of non-positive length")
	}
	ch := c.channel(me, dst, n)
	// One-message-deep backpressure: the previous message must be drained.
	if ch.msgsSent > 0 {
		ch.consumed.Wait(r.proc, r.Core(), uint64(ch.msgsSent))
	}
	for done := int64(0); done < n; {
		k := min64(ch.chunk, n-done)
		r.CopyElems(ch.staging, done, buf, off+done, k, memmodel.Temporal)
		ch.sent++
		ch.produced.Set(r.proc, uint64(ch.sent))
		done += k
	}
	ch.msgsSent++
}

// Recv receives n elements into buf at off from comm rank src, copying each
// chunk out of staging with the given store kind as it is published.
func (r *Rank) Recv(c *Comm, src int, buf *memmodel.Buffer, off, n int64, kind memmodel.StoreKind) {
	r.recvCommon(c, src, n, func(ch *chanState, sOff, dOff, k int64) {
		r.CopyElems(buf, dOff, ch.staging, sOff, k, kind)
	}, off)
}

// RecvReduce receives n elements from comm rank src and folds them into buf
// at off (buf = op(buf, incoming)) without an intermediate copy-out — the
// fused receive+reduce used by ring/Rabenseifner reduction phases.
func (r *Rank) RecvReduce(c *Comm, src int, buf *memmodel.Buffer, off, n int64, op Op) {
	r.recvCommon(c, src, n, func(ch *chanState, sOff, dOff, k int64) {
		r.AccumulateElems(buf, dOff, ch.staging, sOff, k, op, memmodel.Temporal)
	}, off)
}

func (r *Rank) recvCommon(c *Comm, src int, n int64, consume func(ch *chanState, sOff, dOff, k int64), off int64) {
	me := c.CommRank(r.id)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", r.id, c.Name()))
	}
	if src == me {
		panic("mpi: recv from self")
	}
	if n <= 0 {
		panic("mpi: recv of non-positive length")
	}
	ch := c.channel(src, me, n)
	if ch.inMsg > 0 {
		// A previous RecvTimeout abandoned this channel mid-message. Fused
		// receives (reduce/combine) cannot redeliver without double-applying
		// the operator; only RecvTimeout knows how to resume.
		panic(fmt.Sprintf("mpi: channel %s has a partially-received message (%d chunks in); complete it with RecvTimeout",
			p2pKey(src, me), ch.inMsg))
	}
	var msgStart int64 // staging offset of this message's first chunk
	for done := int64(0); done < n; {
		k := min64(ch.chunk, n-done)
		ch.produced.Wait(r.proc, r.Core(), uint64(ch.rcvd+1))
		consume(ch, msgStart+done, off+done, k)
		ch.rcvd++
		done += k
	}
	ch.msgsRcvd++
	ch.consumed.Set(r.proc, uint64(ch.msgsRcvd))
}

// RecvTimeout is Recv with a per-chunk virtual-time bound: if the sender
// fails to publish the next chunk within timeout virtual seconds, the
// receive gives up and returns a *TimeoutError recording how much of the
// message had arrived — distinguishing "sender never showed up" (0 of n)
// from "sender died mid-message".
//
// A timed-out receive is resumable: calling RecvTimeout again with the same
// src and n redelivers the chunks already drained (from staging, without
// waiting) and then continues waiting for the rest, so a retry into a fresh
// buffer sees the whole message and the matched sender is eventually
// unblocked by the completed drain. The fused receive variants
// (RecvReduce/RecvCombine) refuse a mid-message channel — they would
// double-apply the operator on redelivery. Returns nil once the full
// message has been received.
func (r *Rank) RecvTimeout(c *Comm, src int, buf *memmodel.Buffer, off, n int64, kind memmodel.StoreKind, timeout float64) error {
	me := c.CommRank(r.id)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", r.id, c.Name()))
	}
	if src == me {
		panic("mpi: recv from self")
	}
	if n <= 0 {
		panic("mpi: recv of non-positive length")
	}
	ch := c.channel(src, me, n)
	base := ch.rcvd - ch.inMsg // absolute chunk count at this message's start
	resume := ch.inMsg         // chunks a prior timed-out attempt already drained
	for done, idx := int64(0), int64(0); done < n; idx++ {
		k := min64(ch.chunk, n-done)
		if idx >= resume {
			if !ch.produced.WaitTimeout(r.proc, r.Core(), uint64(base+idx+1), timeout) {
				return &TimeoutError{
					Rank:    r.id,
					Op:      r.Op(),
					Comm:    c.Name(),
					Src:     c.GlobalRank(src),
					Done:    done,
					Total:   n,
					Timeout: timeout,
					Clock:   r.Now(),
				}
			}
			ch.rcvd++
			ch.inMsg++
		}
		// Chunks below resume were published before the previous timeout;
		// they are still in staging (backpressure keeps the sender out until
		// we set consumed), so redeliver without waiting.
		r.CopyElems(buf, off+done, ch.staging, done, k, kind)
		done += k
	}
	ch.inMsg = 0
	ch.msgsRcvd++
	ch.consumed.Set(r.proc, uint64(ch.msgsRcvd))
	return nil
}

// RecvCombine receives n elements from comm rank src and writes
// dst = op(other, incoming) without intermediate copies — the fused
// first-accumulation of ring reduce-scatter (incoming partial + own send
// buffer slice straight into the output).
func (r *Rank) RecvCombine(c *Comm, src int, dst *memmodel.Buffer, dOff int64,
	other *memmodel.Buffer, oOff, n int64, op Op) {
	r.recvCommon(c, src, n, func(ch *chanState, sOff, dOffK, k int64) {
		r.CombineElems(dst, dOffK, ch.staging, sOff, other, oOff+(dOffK-dOff), k, op, memmodel.Temporal)
	}, dOff)
}

// SendRecv performs the ring/exchange step: send one block to dst and
// receive another from src. Sends are buffered, so the copy-in happens at
// the sender's pace and the copy-out pipelines behind the matching send.
func (r *Rank) SendRecv(c *Comm, dst int, sendBuf *memmodel.Buffer, sendOff, sendN int64,
	src int, recvBuf *memmodel.Buffer, recvOff, recvN int64, kind memmodel.StoreKind) {
	r.Send(c, dst, sendBuf, sendOff, sendN)
	r.Recv(c, src, recvBuf, recvOff, recvN, kind)
}

// SendRecvReduce is SendRecv with the receive side fused into a reduction
// (buf = op(buf, incoming)), the step primitive of ring/Rabenseifner
// reduce-scatter phases.
func (r *Rank) SendRecvReduce(c *Comm, dst int, sendBuf *memmodel.Buffer, sendOff, sendN int64,
	src int, redBuf *memmodel.Buffer, redOff, redN int64, op Op) {
	r.Send(c, dst, sendBuf, sendOff, sendN)
	r.RecvReduce(c, src, redBuf, redOff, redN, op)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
