package mpi

import (
	"strings"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/topo"
)

func TestNewMachineWithSpares(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 8, 4, false)
	if m.Size() != 8 {
		t.Fatalf("size = %d, want 8", m.Size())
	}
	if m.Spares() != 4 {
		t.Fatalf("spares = %d, want 4", m.Spares())
	}
	// Spares occupy cores just above the rank block.
	for i, c := range m.spareCores {
		if c != 8+i {
			t.Fatalf("spare %d on core %d, want %d", i, c, 8+i)
		}
	}
}

func TestNewMachineWithSparesOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachineWithSpares(topo.NodeA(), 62, 3, false)
}

func TestQuarantineRemapsOntoSpare(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 2, false)
	core, err := m.Quarantine(1)
	if err != nil {
		t.Fatal(err)
	}
	if core != 4 {
		t.Fatalf("quarantined onto core %d, want 4", core)
	}
	if m.RankCores[1] != 4 {
		t.Fatalf("rank 1 bound to core %d, want 4", m.RankCores[1])
	}
	if m.Spares() != 1 {
		t.Fatalf("spares after quarantine = %d, want 1", m.Spares())
	}
	// Machine still runs cleanly with the new binding.
	if _, err := m.Run(func(r *Rank) {
		if r.ID() == 1 && r.Core() != 4 {
			t.Errorf("rank 1 runs on core %d", r.Core())
		}
		r.World().Barrier().Arrive(r.Proc())
	}); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineErrors(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 1, false)
	if _, err := m.Quarantine(7); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := m.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Quarantine(1); err == nil {
		t.Error("quarantine with no spares left should fail")
	}
}

func TestStragglerSlowdownStaysWithCore(t *testing.T) {
	// Arm a straggler on rank 1, then quarantine rank 1 onto a spare. The
	// slowdown belongs to the retired core, so the remapped rank must run at
	// full speed: makespans before/after differ by roughly the factor.
	body := func(r *Rank) {
		r.Compute(1e-3)
		r.World().Barrier().Arrive(r.Proc())
	}
	m := NewMachineWithSpares(topo.NodeA(), 4, 1, false)
	pl := &fault.Plan{Name: "s", Stragglers: []fault.Straggler{{Rank: 1, Factor: 8}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	slow, err := m.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	fast, err := m.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow/2 {
		t.Fatalf("quarantine did not escape the slowdown: slow=%g fast=%g", slow, fast)
	}
	// And no straggler event fires on the recovered run.
	for _, ev := range m.Injector().Events() {
		if ev.Kind == "straggler" {
			t.Errorf("straggler event logged after quarantine: %+v", ev)
		}
	}
}

func TestShrinkRenumbersSurvivors(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 6, 2, false)
	nm, survivors, err := m.Shrink([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Size() != 4 {
		t.Fatalf("shrunken size = %d, want 4", nm.Size())
	}
	want := []int{0, 1, 3, 5}
	for i, s := range survivors {
		if s != want[i] {
			t.Fatalf("survivors = %v, want %v", survivors, want)
		}
	}
	// Survivors keep their physical cores.
	for i, old := range want {
		if nm.RankCores[i] != m.RankCores[old] {
			t.Errorf("new rank %d on core %d, want old rank %d's core %d",
				i, nm.RankCores[i], old, m.RankCores[old])
		}
	}
	if nm.Spares() != 2 {
		t.Errorf("spares not carried over: %d", nm.Spares())
	}
	// The shrunken world is a working communicator.
	if _, err := nm.Run(func(r *Rank) {
		if r.Size() != 4 {
			t.Errorf("rank %d sees size %d", r.ID(), r.Size())
		}
		r.World().Barrier().Arrive(r.Proc())
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkErrors(t *testing.T) {
	m := NewMachine(topo.NodeA(), 3, false)
	if _, _, err := m.Shrink([]int{5}); err == nil {
		t.Error("out-of-range exclusion accepted")
	}
	if _, _, err := m.Shrink([]int{0, 1}); err == nil {
		t.Error("shrink below 2 survivors accepted")
	} else if !strings.Contains(err.Error(), "at least 2") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRankClocksExposeStraggler(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, false)
	if m.RankClocks() != nil {
		t.Fatal("clocks before any run")
	}
	pl := &fault.Plan{Name: "s", Stragglers: []fault.Straggler{{Rank: 2, Factor: 16}}}
	if err := m.SetFaultPlan(pl); err != nil {
		t.Fatal(err)
	}
	// Barrier-free section: each rank just computes, so final clocks diverge.
	if _, err := m.Run(func(r *Rank) { r.Compute(1e-4) }); err != nil {
		t.Fatal(err)
	}
	clocks := m.RankClocks()
	if len(clocks) != 4 {
		t.Fatalf("clocks = %v", clocks)
	}
	for i, c := range clocks {
		if i == 2 {
			continue
		}
		if clocks[2] < 4*c {
			t.Errorf("straggler clock %g not clearly above rank %d's %g", clocks[2], i, c)
		}
	}
}
