package mpi

import (
	"fmt"

	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Machine binds a node topology, a memory cost model and a set of ranks
// pinned to cores. A Machine persists across Run invocations so that
// communicator resources (shared segments, flags) and cache residency carry
// over between iterations, as they do for a long-lived MPI job.
type Machine struct {
	// Node is the hardware description.
	Node *topo.Node
	// Model is the memory cost model (shared by all ranks).
	Model *memmodel.Model
	// RankCores[i] is the core rank i is pinned to.
	RankCores []int
	// Real selects whether buffers carry actual data (correctness mode) or
	// are model-only (timing mode for paper-scale sweeps).
	Real bool
	// Watchdog overrides the no-progress (livelock) threshold in scheduler
	// switches: 0 uses sim.DefaultWatchdogSwitches, negative disables
	// detection entirely.
	Watchdog int

	world    *Comm
	sockets  []*Comm
	privBufs map[int]map[string]*memmodel.Buffer
	inject   *fault.Injector
	rankOps  []string // op each rank last declared via SetOp, for diagnostics
}

// NewMachine creates a machine with p ranks block-bound to cores 0..p-1
// (the paper's lscpu-checked compact binding). Real selects data mode.
func NewMachine(node *topo.Node, p int, real bool) *Machine {
	if p <= 0 || p > node.Cores() {
		panic(fmt.Sprintf("mpi: %d ranks do not fit on %s (%d cores)", p, node.Name, node.Cores()))
	}
	cores := make([]int, p)
	for i := range cores {
		cores[i] = i
	}
	return NewMachineWithBinding(node, cores, real)
}

// NewMachineWithBinding creates a machine with an explicit rank-to-core
// binding (for scatter/imbalance studies).
func NewMachineWithBinding(node *topo.Node, rankCores []int, real bool) *Machine {
	m := &Machine{
		Node:      node,
		Model:     memmodel.New(node, rankCores),
		RankCores: rankCores,
		Real:      real,
		privBufs:  make(map[int]map[string]*memmodel.Buffer),
	}
	// World communicator.
	all := make([]int, len(rankCores))
	for i := range all {
		all[i] = i
	}
	m.world = newComm(m, "world", all)
	// Per-socket communicators.
	bySocket := make(map[int][]int)
	for r, core := range rankCores {
		s := node.SocketOf(core)
		bySocket[s] = append(bySocket[s], r)
	}
	m.sockets = make([]*Comm, node.Sockets)
	for s := 0; s < node.Sockets; s++ {
		if ranks := bySocket[s]; len(ranks) > 0 {
			m.sockets[s] = newComm(m, fmt.Sprintf("socket%d", s), ranks)
		}
	}
	return m
}

// Size returns the number of ranks.
func (m *Machine) Size() int { return len(m.RankCores) }

// World returns the communicator containing every rank.
func (m *Machine) World() *Comm { return m.world }

// SocketComm returns the communicator of ranks bound to socket s (nil if
// the binding placed no ranks there).
func (m *Machine) SocketComm(s int) *Comm { return m.sockets[s] }

// Sockets returns how many sockets have at least one rank.
func (m *Machine) Sockets() int {
	n := 0
	for _, c := range m.sockets {
		if c != nil {
			n++
		}
	}
	return n
}

// SetFaultPlan arms a fault plan for subsequent Run calls (nil or an empty
// plan disarms injection). The plan is validated against the world size so
// a misaddressed fault fails loudly here rather than silently never firing.
func (m *Machine) SetFaultPlan(pl *fault.Plan) error {
	if pl.Empty() {
		m.inject = nil
		return nil
	}
	if err := pl.Validate(m.Size()); err != nil {
		return err
	}
	m.inject = fault.NewInjector(pl)
	return nil
}

// Injector returns the active fault injector (nil when no plan is armed).
func (m *Machine) Injector() *fault.Injector { return m.inject }

// Run executes body once per rank under the discrete-event engine and
// returns the simulated makespan (max clock over all ranks). Resources and
// cache residency persist across calls; counters are NOT reset (snapshot
// them around Run if needed).
//
// A failed run — deadlock, watchdog-detected livelock, or a panic in any
// rank's body (including injected crashes) — returns a *RunError carrying
// per-rank diagnostics and, when a fault plan is armed, the faults that
// fired. Run never hangs on a livelocked program and never lets a rank's
// panic escape unattributed.
func (m *Machine) Run(body func(r *Rank)) (makespan float64, err error) {
	e := sim.NewEngine()
	switch {
	case m.Watchdog > 0:
		e.SetWatchdog(m.Watchdog)
	case m.Watchdog == 0:
		e.SetWatchdog(sim.DefaultWatchdogSwitches)
	}
	m.rankOps = make([]string, m.Size())
	inj := m.inject
	if inj != nil {
		inj.BeginRun(m.Size())
	}
	for i := range m.RankCores {
		i := i
		p := e.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			body(&Rank{proc: p, machine: m, id: i})
		})
		if inj != nil {
			if f := inj.SlowdownFor(i); f > 0 {
				p.SetSlowdown(f)
			}
			if s, ok := inj.StallFor(i); ok {
				reason := fmt.Sprintf("fault: injected stall (plan %q)", inj.Plan().Name)
				if s.Crash {
					reason = fmt.Sprintf("plan %q", inj.Plan().Name)
				}
				p.InjectStallAt(s.At, s.Crash, reason)
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			pp, ok := r.(*sim.ProcPanic)
			if !ok {
				panic(r) // not a proc failure: engine misuse, re-raise
			}
			makespan = 0
			err = m.wrapRunError(pp)
		}
	}()
	if rerr := e.Run(); rerr != nil {
		return 0, m.wrapRunError(rerr)
	}
	return e.MaxClock(), nil
}

// MustRun is Run that panics on error (deadlocks are programming bugs).
func (m *Machine) MustRun(body func(r *Rank)) float64 {
	t, err := m.Run(body)
	if err != nil {
		panic(err)
	}
	return t
}
