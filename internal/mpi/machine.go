package mpi

import (
	"fmt"
	"sort"

	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Machine binds a node topology, a memory cost model and a set of ranks
// pinned to cores. A Machine persists across Run invocations so that
// communicator resources (shared segments, flags) and cache residency carry
// over between iterations, as they do for a long-lived MPI job.
type Machine struct {
	// Node is the hardware description.
	Node *topo.Node
	// Model is the memory cost model (shared by all ranks).
	Model *memmodel.Model
	// RankCores[i] is the core rank i is pinned to.
	RankCores []int
	// Real selects whether buffers carry actual data (correctness mode) or
	// are model-only (timing mode for paper-scale sweeps).
	Real bool
	// Watchdog overrides the no-progress (livelock) threshold in scheduler
	// switches: 0 uses sim.DefaultWatchdogSwitches, negative disables
	// detection entirely.
	Watchdog int

	world    *Comm
	sockets  []*Comm
	privBufs map[int]map[string]*memmodel.Buffer
	inject   *fault.Injector
	rankOps  []string // op each rank last declared via SetOp, for diagnostics

	// epoch is the membership epoch: 0 at creation, bumped once per
	// membership change (Quarantine rebind, Shrink, Grow). Every communicator
	// is stamped with the epoch it was built under; operations through a
	// communicator from an earlier epoch panic with *EpochError. The check is
	// a single integer compare — zero cost on the healthy path.
	epoch int

	// spareCores are reserved cores no rank is bound to, available for
	// quarantine remaps. Consumed front-to-back by Quarantine.
	spareCores []int
	// slowCores maps a physical core to the straggler factor a fault plan
	// assigned it. Keyed by core — not rank — so that a rank remapped off a
	// slow core escapes the slowdown, exactly like moving a process off a
	// thermally-throttled core.
	slowCores map[int]float64
	// lastClocks holds each rank's final virtual clock from the most recent
	// successful Run, in rank order.
	lastClocks []float64

	// external[s] is the number of co-tenant ranks (other jobs) sharing
	// socket s's bandwidth and LLC (see memmodel.NewShared). Preserved
	// across rebind and Shrink so a quarantined or shrunk tenant stays
	// subject to the same neighbors. Nil for a solo machine.
	external []int

	// tuned is the machine's tuned-plan dispatch state, attached once at
	// creation by the facade (loaded from the plan cache) and consulted by
	// the Tuned* collectives. Held untyped so this low-level package does
	// not depend on the planning layers; internal/coll owns the concrete
	// type.
	tuned any
}

// NewMachine creates a machine with p ranks block-bound to cores 0..p-1
// (the paper's lscpu-checked compact binding). Real selects data mode.
func NewMachine(node *topo.Node, p int, real bool) *Machine {
	if p <= 0 || p > node.Cores() {
		panic(fmt.Sprintf("mpi: %d ranks do not fit on %s (%d cores)", p, node.Name, node.Cores()))
	}
	cores := make([]int, p)
	for i := range cores {
		cores[i] = i
	}
	return NewMachineWithBinding(node, cores, real)
}

// NewMachineWithBinding creates a machine with an explicit rank-to-core
// binding (for scatter/imbalance studies).
func NewMachineWithBinding(node *topo.Node, rankCores []int, real bool) *Machine {
	return NewMachineWithContention(node, rankCores, nil, real)
}

// NewMachineWithContention creates a machine whose ranks co-tenant a node
// with other jobs: externalPerSocket[s] foreign ranks share socket s's DRAM
// and L3 bandwidth and its LLC capacity (cores stay exclusively leased; see
// memmodel.NewShared). A nil or all-zero slice is exactly
// NewMachineWithBinding. The contention state survives rebind (Quarantine)
// and Shrink: a recovering tenant keeps paying for its neighbors.
func NewMachineWithContention(node *topo.Node, rankCores, externalPerSocket []int, real bool) *Machine {
	m := &Machine{
		Node:      node,
		Model:     memmodel.NewShared(node, rankCores, externalPerSocket),
		RankCores: rankCores,
		Real:      real,
	}
	if externalPerSocket != nil {
		m.external = append([]int(nil), externalPerSocket...)
	}
	m.initComms()
	return m
}

// NewMachineWithSpares creates a machine with p ranks block-bound to cores
// 0..p-1 plus `spares` reserved cores (p..p+spares-1) that carry no rank but
// can absorb one via Quarantine.
func NewMachineWithSpares(node *topo.Node, p, spares int, real bool) *Machine {
	if spares < 0 {
		panic("mpi: negative spare count")
	}
	if p+spares > node.Cores() {
		panic(fmt.Sprintf("mpi: %d ranks + %d spares do not fit on %s (%d cores)",
			p, spares, node.Name, node.Cores()))
	}
	m := NewMachine(node, p, real)
	m.spareCores = make([]int, spares)
	for i := range m.spareCores {
		m.spareCores[i] = p + i
	}
	return m
}

// initComms (re)builds the world and per-socket communicators and clears
// per-rank persistent buffers for the current Model/RankCores. Called at
// construction and again after a rebind, where the old Model's buffers and
// flags must not leak into the new cost model.
func (m *Machine) initComms() {
	m.privBufs = make(map[int]map[string]*memmodel.Buffer)
	// World communicator.
	all := make([]int, len(m.RankCores))
	for i := range all {
		all[i] = i
	}
	m.world = newComm(m, "world", all)
	// Per-socket communicators.
	bySocket := make(map[int][]int)
	for r, core := range m.RankCores {
		s := m.Node.SocketOf(core)
		bySocket[s] = append(bySocket[s], r)
	}
	m.sockets = make([]*Comm, m.Node.Sockets)
	for s := 0; s < m.Node.Sockets; s++ {
		if ranks := bySocket[s]; len(ranks) > 0 {
			m.sockets[s] = newComm(m, fmt.Sprintf("socket%d", s), ranks)
		}
	}
}

// rebind moves the machine onto a new rank-to-core binding: fresh cost model
// (bandwidth shares depend on the binding) and fresh communicator resources.
// Cache residency is deliberately dropped — a remapped process starts cold.
// The membership epoch advances, so communicators fetched before the rebind
// fail fast instead of silently carrying stale flags and segments.
func (m *Machine) rebind(rankCores []int) {
	m.RankCores = rankCores
	m.Model = memmodel.NewShared(m.Node, rankCores, m.external)
	m.epoch++
	m.initComms()
}

// Epoch returns the machine's current membership epoch: 0 at creation,
// incremented by every Quarantine, Shrink and Grow.
func (m *Machine) Epoch() int { return m.epoch }

// adoptEpoch advances a freshly constructed machine to the given epoch and
// restamps its communicators, so that a Shrink/Grow child reports a later
// epoch than its parent rather than resetting to zero.
func (m *Machine) adoptEpoch(e int) {
	m.epoch = e
	m.world.epoch = e
	for _, c := range m.sockets {
		if c != nil {
			c.epoch = e
		}
	}
}

// Spares returns how many spare cores remain available for Quarantine.
func (m *Machine) Spares() int { return len(m.spareCores) }

// Quarantine remaps rank onto the next spare core, retiring the rank's old
// core (it is NOT returned to the spare pool — it is suspect). The straggler
// slowdown armed for the old core stays with the core, so the remapped rank
// escapes it. Returns the core the rank now runs on.
//
// Communicator resources and cache residency are rebuilt from scratch, as a
// real respawn-on-spare would: the recovered run pays cold-cache costs.
func (m *Machine) Quarantine(rank int) (core int, err error) {
	if rank < 0 || rank >= m.Size() {
		return 0, fmt.Errorf("mpi: quarantine rank %d out of range [0,%d)", rank, m.Size())
	}
	if len(m.spareCores) == 0 {
		return 0, fmt.Errorf("mpi: no spare core left to quarantine rank %d", rank)
	}
	core = m.spareCores[0]
	m.spareCores = m.spareCores[1:]
	cores := make([]int, m.Size())
	copy(cores, m.RankCores)
	cores[rank] = core
	m.rebind(cores)
	return core, nil
}

// Shrink builds a new machine over the survivors after excluding the given
// ranks (ULFM MPI_Comm_shrink semantics): survivors keep their cores and are
// renumbered 0..n-1 in old-rank order. The returned slice maps new rank ->
// old rank. Spare cores carry over; the fault plan does not (re-arm a
// Restricted plan on the new machine if faults should persist). The old
// machine remains valid but shares no state with the new one.
func (m *Machine) Shrink(exclude []int) (*Machine, []int, error) {
	excl := make(map[int]bool, len(exclude))
	for _, r := range exclude {
		if r < 0 || r >= m.Size() {
			return nil, nil, fmt.Errorf("mpi: shrink: excluded rank %d out of range [0,%d)", r, m.Size())
		}
		excl[r] = true
	}
	var survivors, cores []int
	for r, core := range m.RankCores {
		if !excl[r] {
			survivors = append(survivors, r)
			cores = append(cores, core)
		}
	}
	if len(survivors) < 2 {
		return nil, nil, fmt.Errorf("mpi: shrink leaves %d rank(s); need at least 2", len(survivors))
	}
	nm := NewMachineWithContention(m.Node, cores, m.external, m.Real)
	nm.Watchdog = m.Watchdog
	nm.spareCores = append([]int(nil), m.spareCores...)
	nm.adoptEpoch(m.epoch + 1)
	return nm, survivors, nil
}

// Grow is the exact dual of Shrink: it builds a new machine whose membership
// is the current ranks plus one new rank per listed core. Existing ranks keep
// their cores and their numbering; the added cores are sorted ascending and
// become ranks n..n+k-1 (new ranks appended in core order), so growing back
// the cores a Shrink removed restores the original binding bit-for-bit. The
// returned slice maps new rank -> old rank, with -1 for the added ranks.
// Cores listed in the spare pool are consumed from it (hot-adding a spare);
// contention state and the watchdog carry over, and the new machine's epoch
// is the parent's plus one. The old machine remains valid but shares no
// state with the new one.
func (m *Machine) Grow(cores []int) (*Machine, []int, error) {
	if len(cores) == 0 {
		return nil, nil, fmt.Errorf("mpi: grow: no cores to add")
	}
	bound := make(map[int]bool, m.Size())
	for _, c := range m.RankCores {
		bound[c] = true
	}
	added := append([]int(nil), cores...)
	sort.Ints(added)
	for i, c := range added {
		switch {
		case c < 0 || c >= m.Node.Cores():
			return nil, nil, fmt.Errorf("mpi: grow: core %d out of range [0,%d)", c, m.Node.Cores())
		case bound[c]:
			return nil, nil, fmt.Errorf("mpi: grow: core %d already carries a rank", c)
		case i > 0 && added[i-1] == c:
			return nil, nil, fmt.Errorf("mpi: grow: core %d listed twice", c)
		}
	}
	newCores := make([]int, 0, m.Size()+len(added))
	newCores = append(newCores, m.RankCores...)
	newCores = append(newCores, added...)
	nm := NewMachineWithContention(m.Node, newCores, m.external, m.Real)
	nm.Watchdog = m.Watchdog
	grown := make(map[int]bool, len(added))
	for _, c := range added {
		grown[c] = true
	}
	for _, c := range m.spareCores {
		if !grown[c] {
			nm.spareCores = append(nm.spareCores, c)
		}
	}
	nm.adoptEpoch(m.epoch + 1)
	oldOf := make([]int, len(newCores))
	for i := range oldOf {
		if i < m.Size() {
			oldOf[i] = i
		} else {
			oldOf[i] = -1
		}
	}
	return nm, oldOf, nil
}

// External returns the per-socket co-tenant rank counts this machine was
// built with (nil for a solo machine).
func (m *Machine) External() []int {
	if m.external == nil {
		return nil
	}
	return append([]int(nil), m.external...)
}

// RankClocks returns each rank's final virtual clock from the most recent
// successful Run (nil if no run has completed). Useful as a per-rank
// progress snapshot: a straggling rank finishes a barrier-free section late.
func (m *Machine) RankClocks() []float64 {
	if m.lastClocks == nil {
		return nil
	}
	return append([]float64(nil), m.lastClocks...)
}

// SetTuning attaches tuned-plan dispatch state (a *coll.Planner) to the
// machine. Called once at machine creation — never per collective call.
func (m *Machine) SetTuning(t any) { m.tuned = t }

// Tuning returns the attached tuned-plan state, or nil when the machine
// runs on hand-tuned dispatch only.
func (m *Machine) Tuning() any { return m.tuned }

// Size returns the number of ranks.
func (m *Machine) Size() int { return len(m.RankCores) }

// World returns the communicator containing every rank.
func (m *Machine) World() *Comm { return m.world }

// SocketComm returns the communicator of ranks bound to socket s (nil if
// the binding placed no ranks there).
func (m *Machine) SocketComm(s int) *Comm { return m.sockets[s] }

// Sockets returns how many sockets have at least one rank.
func (m *Machine) Sockets() int {
	n := 0
	for _, c := range m.sockets {
		if c != nil {
			n++
		}
	}
	return n
}

// SetFaultPlan arms a fault plan for subsequent Run calls (nil or an empty
// plan disarms injection). The plan is validated against the world size so
// a misaddressed fault fails loudly here rather than silently never firing.
func (m *Machine) SetFaultPlan(pl *fault.Plan) error {
	if pl.Empty() {
		m.inject = nil
		m.slowCores = nil
		return nil
	}
	if err := pl.Validate(m.Size()); err != nil {
		return err
	}
	m.inject = fault.NewInjector(pl)
	m.slowCores = nil
	if len(pl.Stragglers) > 0 {
		// Pin each straggler factor to the PHYSICAL core the rank currently
		// occupies. A later Quarantine leaves this map untouched, so the
		// slowdown stays behind on the retired core.
		m.slowCores = make(map[int]float64, len(pl.Stragglers))
		for _, s := range pl.Stragglers {
			m.slowCores[m.RankCores[s.Rank]] = s.Factor
		}
	}
	return nil
}

// Injector returns the active fault injector (nil when no plan is armed).
func (m *Machine) Injector() *fault.Injector { return m.inject }

// Run executes body once per rank under the discrete-event engine and
// returns the simulated makespan (max clock over all ranks). Resources and
// cache residency persist across calls; counters are NOT reset (snapshot
// them around Run if needed).
//
// A failed run — deadlock, watchdog-detected livelock, or a panic in any
// rank's body (including injected crashes) — returns a *RunError carrying
// per-rank diagnostics and, when a fault plan is armed, the faults that
// fired. Run never hangs on a livelocked program and never lets a rank's
// panic escape unattributed.
func (m *Machine) Run(body func(r *Rank)) (makespan float64, err error) {
	e := sim.NewEngine()
	switch {
	case m.Watchdog > 0:
		e.SetWatchdog(m.Watchdog)
	case m.Watchdog == 0:
		e.SetWatchdog(sim.DefaultWatchdogSwitches)
	}
	m.rankOps = make([]string, m.Size())
	inj := m.inject
	if inj != nil {
		inj.BeginRun(m.Size())
	}
	procs := make([]*sim.Proc, m.Size())
	for i := range m.RankCores {
		i := i
		p := e.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			body(&Rank{proc: p, machine: m, id: i})
		})
		procs[i] = p
		if inj != nil {
			if f, ok := m.slowCores[m.RankCores[i]]; ok {
				p.SetSlowdown(f)
				inj.LogStraggler(i, f)
			}
			if s, ok := inj.StallFor(i); ok {
				reason := fmt.Sprintf("fault: injected stall (plan %q)", inj.Plan().Name)
				if s.Crash {
					reason = fmt.Sprintf("plan %q", inj.Plan().Name)
				}
				p.InjectStallAt(s.At, s.Crash, reason)
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			pp, ok := r.(*sim.ProcPanic)
			if !ok {
				panic(r) // not a proc failure: engine misuse, re-raise
			}
			makespan = 0
			err = m.wrapRunError(pp)
		}
	}()
	if rerr := e.Run(); rerr != nil {
		return 0, m.wrapRunError(rerr)
	}
	m.lastClocks = make([]float64, len(procs))
	for i, p := range procs {
		m.lastClocks[i] = p.Now()
	}
	return e.MaxClock(), nil
}

// MustRun is Run that panics on error (deadlocks are programming bugs).
func (m *Machine) MustRun(body func(r *Rank)) float64 {
	t, err := m.Run(body)
	if err != nil {
		panic(err)
	}
	return t
}
