package mpi

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// Machine binds a node topology, a memory cost model and a set of ranks
// pinned to cores. A Machine persists across Run invocations so that
// communicator resources (shared segments, flags) and cache residency carry
// over between iterations, as they do for a long-lived MPI job.
type Machine struct {
	// Node is the hardware description.
	Node *topo.Node
	// Model is the memory cost model (shared by all ranks).
	Model *memmodel.Model
	// RankCores[i] is the core rank i is pinned to.
	RankCores []int
	// Real selects whether buffers carry actual data (correctness mode) or
	// are model-only (timing mode for paper-scale sweeps).
	Real bool

	world    *Comm
	sockets  []*Comm
	privBufs map[int]map[string]*memmodel.Buffer
}

// NewMachine creates a machine with p ranks block-bound to cores 0..p-1
// (the paper's lscpu-checked compact binding). Real selects data mode.
func NewMachine(node *topo.Node, p int, real bool) *Machine {
	if p <= 0 || p > node.Cores() {
		panic(fmt.Sprintf("mpi: %d ranks do not fit on %s (%d cores)", p, node.Name, node.Cores()))
	}
	cores := make([]int, p)
	for i := range cores {
		cores[i] = i
	}
	return NewMachineWithBinding(node, cores, real)
}

// NewMachineWithBinding creates a machine with an explicit rank-to-core
// binding (for scatter/imbalance studies).
func NewMachineWithBinding(node *topo.Node, rankCores []int, real bool) *Machine {
	m := &Machine{
		Node:      node,
		Model:     memmodel.New(node, rankCores),
		RankCores: rankCores,
		Real:      real,
		privBufs:  make(map[int]map[string]*memmodel.Buffer),
	}
	// World communicator.
	all := make([]int, len(rankCores))
	for i := range all {
		all[i] = i
	}
	m.world = newComm(m, "world", all)
	// Per-socket communicators.
	bySocket := make(map[int][]int)
	for r, core := range rankCores {
		s := node.SocketOf(core)
		bySocket[s] = append(bySocket[s], r)
	}
	m.sockets = make([]*Comm, node.Sockets)
	for s := 0; s < node.Sockets; s++ {
		if ranks := bySocket[s]; len(ranks) > 0 {
			m.sockets[s] = newComm(m, fmt.Sprintf("socket%d", s), ranks)
		}
	}
	return m
}

// Size returns the number of ranks.
func (m *Machine) Size() int { return len(m.RankCores) }

// World returns the communicator containing every rank.
func (m *Machine) World() *Comm { return m.world }

// SocketComm returns the communicator of ranks bound to socket s (nil if
// the binding placed no ranks there).
func (m *Machine) SocketComm(s int) *Comm { return m.sockets[s] }

// Sockets returns how many sockets have at least one rank.
func (m *Machine) Sockets() int {
	n := 0
	for _, c := range m.sockets {
		if c != nil {
			n++
		}
	}
	return n
}

// Run executes body once per rank under the discrete-event engine and
// returns the simulated makespan (max clock over all ranks). Resources and
// cache residency persist across calls; counters are NOT reset (snapshot
// them around Run if needed).
func (m *Machine) Run(body func(r *Rank)) (makespan float64, err error) {
	e := sim.NewEngine()
	for i := range m.RankCores {
		i := i
		e.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			body(&Rank{proc: p, machine: m, id: i})
		})
	}
	if err := e.Run(); err != nil {
		return 0, err
	}
	return e.MaxClock(), nil
}

// MustRun is Run that panics on error (deadlocks are programming bugs).
func (m *Machine) MustRun(body func(r *Rank)) float64 {
	t, err := m.Run(body)
	if err != nil {
		panic(err)
	}
	return t
}
