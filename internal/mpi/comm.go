package mpi

import (
	"fmt"

	"yhccl/internal/memmodel"
	"yhccl/internal/shm"
)

// Comm is a communicator: an ordered group of global ranks plus the shared
// resources (segments, flags, barrier) its collectives use. Resources are
// memoized by label so that repeated collective invocations reuse the same
// shared memory and flags, exactly like a persistent MPI communicator
// context — this is what lets shared segments stay cache-warm across
// iterations.
type Comm struct {
	machine *Machine
	name    string
	ranks   []int       // global rank ids, comm rank = index
	index   map[int]int // global rank -> comm rank
	epoch   int         // membership epoch this comm was built under

	buffers  map[string]*memmodel.Buffer
	flagSets map[string][]*shm.Flag
	p2p      map[string]*chanState
	pubs     map[string][]*memmodel.Buffer
	counters map[string][]int64
	barrier  *shm.Barrier
	arena    *shm.Arena
}

func newComm(m *Machine, name string, ranks []int) *Comm {
	c := &Comm{
		machine:  m,
		name:     name,
		epoch:    m.epoch,
		ranks:    ranks,
		index:    make(map[int]int, len(ranks)),
		buffers:  make(map[string]*memmodel.Buffer),
		flagSets: make(map[string][]*shm.Flag),
		p2p:      make(map[string]*chanState),
		pubs:     make(map[string][]*memmodel.Buffer),
		counters: make(map[string][]int64),
		arena:    shm.NewArena(m.Model, name, m.Real),
	}
	for i, r := range ranks {
		c.index[r] = i
	}
	return c
}

// Name returns the communicator label.
func (c *Comm) Name() string { return c.name }

// Epoch returns the membership epoch this communicator was built under.
func (c *Comm) Epoch() int { return c.epoch }

// check panics with a typed *EpochError when the communicator predates the
// machine's current membership epoch — its flags, segments and pipes belong
// to a membership that no longer exists, so no traffic may cross epochs. One
// integer compare; zero float ops, zero allocations on the healthy path.
func (c *Comm) check() {
	if c.epoch != c.machine.epoch {
		panic(&EpochError{Comm: c.name, Stale: c.epoch, Current: c.machine.epoch})
	}
}

// Size returns the number of participating ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// GlobalRank maps a comm rank to its global rank id.
func (c *Comm) GlobalRank(commRank int) int { return c.ranks[commRank] }

// CommRank maps a global rank id to its comm rank, or -1 if absent.
func (c *Comm) CommRank(globalRank int) int {
	if i, ok := c.index[globalRank]; ok {
		return i
	}
	return -1
}

// CoreOf returns the core that comm rank i runs on.
func (c *Comm) CoreOf(commRank int) int {
	return c.machine.RankCores[c.ranks[commRank]]
}

// SocketOf returns the socket of comm rank i.
func (c *Comm) SocketOf(commRank int) int {
	return c.machine.Node.SocketOf(c.CoreOf(commRank))
}

// Machine returns the owning machine.
func (c *Comm) Machine() *Machine { return c.machine }

// Shared returns the shared buffer with the given label, creating it homed
// on the given socket on first use. Subsequent calls must agree on size and
// homing.
func (c *Comm) Shared(label string, home int, elems int64) *memmodel.Buffer {
	c.check()
	if b, ok := c.buffers[label]; ok {
		if b.Elems != elems || b.Home != home {
			panic(fmt.Sprintf("mpi: shared buffer %q re-requested with different shape (%d@%d vs %d@%d)",
				label, elems, home, b.Elems, b.Home))
		}
		return b
	}
	b := c.arena.Alloc(label, home, elems)
	c.buffers[label] = b
	return b
}

// SharedPinned returns (creating on first use) a shared buffer modelled as
// permanently cache-resident — a reused transport ring (see
// memmodel.Buffer.Pinned).
func (c *Comm) SharedPinned(label string, home int, elems int64) *memmodel.Buffer {
	c.check()
	if b, ok := c.buffers[label]; ok {
		if b.Elems != elems || b.Home != home || !b.Pinned {
			panic(fmt.Sprintf("mpi: pinned buffer %q re-requested with different shape", label))
		}
		return b
	}
	b := c.arena.AllocPinned(label, home, elems)
	c.buffers[label] = b
	return b
}

// Flags returns the flag array with the given label (one flag per comm
// rank, flag i owned by comm rank i's core), creating it on first use.
func (c *Comm) Flags(label string) []*shm.Flag {
	c.check()
	if fs, ok := c.flagSets[label]; ok {
		return fs
	}
	fs := make([]*shm.Flag, c.Size())
	for i := range fs {
		fs[i] = shm.NewFlag(c.machine.Model,
			fmt.Sprintf("%s/%s[%d]", c.name, label, i), c.CoreOf(i))
	}
	c.flagSets[label] = fs
	return fs
}

// Publish registers r's buffer under the label, making it visible to the
// other ranks of the communicator via Peer — the stand-in for XPMEM-style
// address-space exposure. Callers must barrier between Publish and Peer.
func (c *Comm) Publish(r *Rank, label string, b *memmodel.Buffer) {
	c.check()
	slots, ok := c.pubs[label]
	if !ok {
		slots = make([]*memmodel.Buffer, c.Size())
		c.pubs[label] = slots
	}
	me := c.CommRank(r.id)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", r.id, c.Name()))
	}
	slots[me] = b
}

// Peer returns the buffer comm rank `who` published under the label.
func (c *Comm) Peer(label string, who int) *memmodel.Buffer {
	c.check()
	slots := c.pubs[label]
	if slots == nil || slots[who] == nil {
		panic(fmt.Sprintf("mpi: no buffer published as %q by comm rank %d", label, who))
	}
	return slots[who]
}

// Counter returns a pointer to a persistent per-rank counter, used by
// collectives to keep their monotone flag epochs across invocations.
func (c *Comm) Counter(r *Rank, key string) *int64 {
	c.check()
	vals, ok := c.counters[key]
	if !ok {
		vals = make([]int64, c.Size())
		c.counters[key] = vals
	}
	me := c.CommRank(r.id)
	if me < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in comm %s", r.id, c.Name()))
	}
	return &vals[me]
}

// Barrier returns the communicator's barrier (created on first use).
func (c *Comm) Barrier() *shm.Barrier {
	c.check()
	if c.barrier == nil {
		cores := make([]int, c.Size())
		for i := range cores {
			cores[i] = c.CoreOf(i)
		}
		c.barrier = shm.MustBarrier(c.machine.Model, c.name+"/barrier", cores)
	}
	return c.barrier
}
