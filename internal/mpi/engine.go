package mpi

import "yhccl/internal/sim"

// RunProgram executes a compiled step program on the selected simulation
// core and returns the simulated makespan in seconds. Unlike Run, which
// spawns one coroutine per machine rank executing Go code against live
// communicator state, RunProgram interprets a precompiled schedule — the
// program's ranks are state machines, and on the event engine no goroutines
// are created no matter how many ranks the program spans. The program may
// therefore describe far more ranks than the machine hosts (a machine
// stands in for one node of a compiled multi-node world).
func (m *Machine) RunProgram(prog sim.Program, kind sim.EngineKind) (float64, error) {
	res, err := sim.RunProgram(kind, prog)
	if err != nil {
		return 0, err
	}
	return res.Makespan.Seconds(), nil
}
