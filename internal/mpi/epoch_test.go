package mpi

import (
	"fmt"
	"strings"
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

// epochRingBody is a small but representative collective body: every rank
// sends a message around a ring and reduces it into a private buffer, then
// barriers. It touches the p2p pipes, flags and the barrier, so any of them
// issued through a stale communicator would trip the epoch check.
func epochRingBody(elems int64) func(r *Rank) {
	return func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("ring", elems)
		r.FillPattern(buf, float64(r.ID()))
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		r.Send(w, next, buf, 0, elems)
		r.RecvReduce(w, prev, buf, 0, elems, Sum)
		r.Compute(1e-5)
		w.Barrier().Arrive(r.Proc())
	}
}

func TestEpochStartsAtZeroAndAdvances(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 2, false)
	if m.Epoch() != 0 {
		t.Fatalf("fresh machine epoch = %d, want 0", m.Epoch())
	}
	if m.World().Epoch() != 0 {
		t.Fatalf("fresh world epoch = %d, want 0", m.World().Epoch())
	}
	if _, err := m.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch after quarantine = %d, want 1", m.Epoch())
	}
	if m.World().Epoch() != 1 {
		t.Fatalf("world epoch after quarantine = %d, want 1", m.World().Epoch())
	}
	nm, _, err := m.Shrink([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Epoch() != 2 {
		t.Fatalf("epoch after shrink = %d, want 2", nm.Epoch())
	}
	gm, _, err := nm.Grow([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if gm.Epoch() != 3 {
		t.Fatalf("epoch after grow = %d, want 3", gm.Epoch())
	}
	if gm.World().Epoch() != 3 || gm.SocketComm(0).Epoch() != 3 {
		t.Fatalf("grown comms not restamped: world=%d socket=%d",
			gm.World().Epoch(), gm.SocketComm(0).Epoch())
	}
}

// TestEpochErrorExactFormat pins the typed stale-communicator failure:
// holding a communicator across a membership change and using it must panic
// with *EpochError naming the stale and current epochs, in exactly this
// rendering.
func TestEpochErrorExactFormat(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 1, false)
	stale := m.World()
	if _, err := m.Quarantine(2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stale communicator accepted an operation")
		}
		ee, ok := r.(*EpochError)
		if !ok {
			t.Fatalf("panic value %T, want *EpochError", r)
		}
		if ee.Comm != "world" || ee.Stale != 0 || ee.Current != 1 {
			t.Fatalf("EpochError = %+v", ee)
		}
		const want = `mpi: stale communicator "world": built at epoch 0, machine is at epoch 1 (membership changed; re-acquire communicators from the machine)`
		if got := ee.Error(); got != want {
			t.Fatalf("message:\n got %q\nwant %q", got, want)
		}
	}()
	stale.Shared("x", 0, 8)
}

// Every resource accessor on a stale communicator must trip the check, not
// just Shared — a single silent path would let cross-epoch traffic through.
func TestEpochCheckCoversAllAccessors(t *testing.T) {
	accessors := map[string]func(c *Comm){
		"Shared":       func(c *Comm) { c.Shared("x", 0, 8) },
		"SharedPinned": func(c *Comm) { c.SharedPinned("x", 0, 8) },
		"Flags":        func(c *Comm) { c.Flags("f") },
		"Publish":      func(c *Comm) { c.Publish(&Rank{machine: c.machine, id: 0}, "p", nil) },
		"Peer":         func(c *Comm) { c.Peer("p", 0) },
		"Counter":      func(c *Comm) { c.Counter(&Rank{machine: c.machine, id: 0}, "k") },
		"Barrier":      func(c *Comm) { c.Barrier() },
		"channel":      func(c *Comm) { c.channel(0, 1, 8) },
	}
	for name, op := range accessors {
		m := NewMachineWithSpares(topo.NodeA(), 4, 1, false)
		stale := m.World()
		if _, err := m.Quarantine(1); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if _, ok := recover().(*EpochError); !ok {
					t.Errorf("%s did not raise *EpochError", name)
				}
			}()
			op(stale)
		}()
	}
}

// A stale communicator used inside Run surfaces as a diagnosable *RunError,
// not a bare crash: the EpochError is reachable underneath it.
func TestEpochErrorInsideRunIsDiagnosed(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 1, false)
	stale := m.World()
	if _, err := m.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(func(r *Rank) {
		stale.Barrier().Arrive(r.Proc())
	})
	if err == nil {
		t.Fatal("run over a stale communicator succeeded")
	}
	re, ok := err.(*RunError)
	if !ok {
		t.Fatalf("error %T, want *RunError", err)
	}
	if !strings.Contains(re.Error(), "stale communicator") {
		t.Fatalf("diagnosis does not name the stale communicator: %v", re)
	}
}

func TestGrowIsDualOfShrink(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 6, 2, false)
	nm, _, err := m.Shrink([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Grow back the two excluded cores: survivors keep cores and numbering,
	// the re-added cores become the last ranks in ascending core order.
	gm, oldOf, err := nm.Grow([]int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if gm.Size() != 6 {
		t.Fatalf("grown size = %d, want 6", gm.Size())
	}
	wantCores := []int{0, 1, 3, 5, 2, 4}
	for i, c := range gm.RankCores {
		if c != wantCores[i] {
			t.Fatalf("grown cores = %v, want %v", gm.RankCores, wantCores)
		}
	}
	wantOld := []int{0, 1, 2, 3, -1, -1}
	for i, o := range oldOf {
		if o != wantOld[i] {
			t.Fatalf("oldOf = %v, want %v", oldOf, wantOld)
		}
	}
	// The grown world is a working communicator.
	if _, err := gm.Run(epochRingBody(256)); err != nil {
		t.Fatal(err)
	}
}

func TestGrowConsumesMatchingSpares(t *testing.T) {
	m := NewMachineWithSpares(topo.NodeA(), 4, 3, false) // spares: cores 4,5,6
	gm, _, err := m.Grow([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if gm.Size() != 5 || gm.RankCores[4] != 5 {
		t.Fatalf("grown binding = %v", gm.RankCores)
	}
	if gm.Spares() != 2 {
		t.Fatalf("spares after grow = %d, want 2 (core 5 consumed)", gm.Spares())
	}
}

func TestGrowErrors(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, false)
	if _, _, err := m.Grow(nil); err == nil {
		t.Error("empty grow accepted")
	}
	if _, _, err := m.Grow([]int{2}); err == nil {
		t.Error("grow onto an occupied core accepted")
	}
	if _, _, err := m.Grow([]int{99}); err == nil {
		t.Error("grow onto an out-of-range core accepted")
	}
	if _, _, err := m.Grow([]int{5, 5}); err == nil {
		t.Error("duplicate grow core accepted")
	}
}

// runLog renders a run's outcome at full float precision: the makespan plus
// every rank's final clock. Byte-equality of these logs is the round-trip
// determinism bar — any drift in the rebuilt binding would show here.
func runLog(t *testing.T, m *Machine, body func(r *Rank)) string {
	t.Helper()
	mk, err := m.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%.17g\n", mk)
	for i, c := range m.RankClocks() {
		fmt.Fprintf(&b, "rank%d clock=%.17g\n", i, c)
	}
	return b.String()
}

// TestShrinkGrowRoundTripExact: shrinking the tail rank off and growing its
// core back must restore the original binding, and the rebuilt machine must
// reproduce the original machine's makespan exactly — twice, with
// byte-identical cold- and warm-run logs.
func TestShrinkGrowRoundTripExact(t *testing.T) {
	body := epochRingBody(2048)
	ref := NewMachine(topo.NodeA(), 8, false)
	refCold := runLog(t, ref, body)
	refWarm := runLog(t, ref, body)

	m := NewMachine(topo.NodeA(), 8, false)
	sm, _, err := m.Shrink([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	gm, _, err := sm.Grow([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range gm.RankCores {
		if c != m.RankCores[i] {
			t.Fatalf("round trip changed binding: %v vs %v", gm.RankCores, m.RankCores)
		}
	}
	if gm.Epoch() != 2 {
		t.Fatalf("round-trip epoch = %d, want 2", gm.Epoch())
	}
	gotCold := runLog(t, gm, body)
	gotWarm := runLog(t, gm, body)
	if gotCold != refCold {
		t.Fatalf("cold round-trip log diverged:\n got:\n%s\nwant:\n%s", gotCold, refCold)
	}
	if gotWarm != refWarm {
		t.Fatalf("warm round-trip log diverged:\n got:\n%s\nwant:\n%s", gotWarm, refWarm)
	}
}

// The round trip must also hold in real-data mode, where buffers carry
// actual values: correctness and timing both survive shrink+grow.
func TestShrinkGrowRoundTripRealData(t *testing.T) {
	elems := int64(512)
	body := func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("v", elems)
		r.FillPattern(buf, float64(r.ID()+1))
		acc := w.Shared("acc", 0, elems)
		fs := w.Flags("turn")
		if r.ID() == 0 {
			r.CopyElems(acc, 0, buf, 0, elems, memmodel.Temporal)
		} else {
			fs[r.ID()-1].Wait(r.Proc(), r.Core(), uint64(r.ID()))
			r.AccumulateElems(acc, 0, buf, 0, elems, Sum, memmodel.Temporal)
		}
		fs[r.ID()].Set(r.Proc(), uint64(r.ID())+1)
		w.Barrier().Arrive(r.Proc())
	}
	m := NewMachine(topo.NodeA(), 4, true)
	want := runLog(t, m, body)

	m2 := NewMachine(topo.NodeA(), 4, true)
	sm, _, err := m2.Shrink([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	gm, _, err := sm.Grow([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := runLog(t, gm, body); got != want {
		t.Fatalf("real-data round trip diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
}
