package mpi

import (
	"errors"
	"testing"

	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

// TestRecvTimeoutRetryCompletes is the regression test for the mid-message
// retry bug: a timed-out receive used to leave the channel's chunk counter
// out of step with the staging offsets, so a retry either deadlocked waiting
// for chunks the sender never publishes (leaving the matched sender blocked
// on backpressure forever) or copied the wrong staging region into the
// retry's buffer. A retried RecvTimeout must redeliver the already-drained
// chunks, finish the message, unblock the sender, and leave the channel
// usable for the next message.
func TestRecvTimeoutRetryCompletes(t *testing.T) {
	const chunks = 4
	const n = chunks * DefaultP2PChunkElems

	m := NewMachine(topo.NodeA(), 2, true)
	// Slow the sender 100x so its per-chunk copy-in spreads out in virtual
	// time and the receiver's short per-chunk timeout fires mid-message.
	if err := m.SetFaultPlan(&fault.Plan{
		Name:       "slow-sender",
		Stragglers: []fault.Straggler{{Rank: 0, Factor: 100}},
	}); err != nil {
		t.Fatal(err)
	}

	var midMessage, timeouts int
	var firstMsgOK, secondMsgOK bool
	_, err := m.Run(func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			src := r.NewBuffer("src", n)
			r.FillPattern(src, 500)
			r.Send(w, 1, src, 0, n)
			// Second send: blocks on backpressure until the receiver fully
			// drains message one — impossible if the retry path is broken.
			r.FillPattern(src, 900)
			r.Send(w, 1, src, 0, n)
			return
		}
		dst := r.NewBuffer("dst", n)
		for {
			err := r.RecvTimeout(w, 0, dst, 0, n, memmodel.Temporal, 5e-5)
			if err == nil {
				break
			}
			var te *TimeoutError
			if !errors.As(err, &te) {
				t.Errorf("unexpected error type: %v", err)
				return
			}
			timeouts++
			if te.Done > 0 && te.Done < n {
				midMessage++
			}
			if timeouts > 10000 {
				t.Error("receive never completed")
				return
			}
		}
		firstMsgOK = true
		for i, v := range dst.Slice(0, n) {
			if v != 500+float64(i) {
				t.Errorf("message 1: dst[%d] = %v, want %v", i, v, 500+float64(i))
				return
			}
		}
		// The channel must be clean for an ordinary receive afterwards.
		dst2 := r.NewBuffer("dst2", n)
		r.Recv(w, 0, dst2, 0, n, memmodel.Temporal)
		secondMsgOK = true
		for i, v := range dst2.Slice(0, n) {
			if v != 900+float64(i) {
				t.Errorf("message 2: dst2[%d] = %v, want %v", i, v, 900+float64(i))
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if timeouts == 0 {
		t.Error("receiver never timed out; test exercised nothing")
	}
	if midMessage == 0 {
		t.Error("no mid-message timeout observed (Done stuck at 0); retry path not exercised")
	}
	if !firstMsgOK || !secondMsgOK {
		t.Errorf("messages received: first=%v second=%v", firstMsgOK, secondMsgOK)
	}
}

// TestFusedRecvRefusesMidMessageChannel: RecvReduce would double-accumulate
// redelivered chunks, so a channel abandoned mid-message by RecvTimeout must
// be rejected loudly rather than silently corrupting the reduction.
func TestFusedRecvRefusesMidMessageChannel(t *testing.T) {
	const n = 2 * DefaultP2PChunkElems
	m := NewMachine(topo.NodeA(), 2, true)
	if err := m.SetFaultPlan(&fault.Plan{
		Name:       "slow-sender",
		Stragglers: []fault.Straggler{{Rank: 0, Factor: 100}},
	}); err != nil {
		t.Fatal(err)
	}
	var panicked bool
	_, err := m.Run(func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			src := r.NewBuffer("src", n)
			r.FillPattern(src, 0)
			r.Send(w, 1, src, 0, n)
			return
		}
		dst := r.NewBuffer("dst", n)
		// Spin short timeouts until at least one chunk is in, then abandon.
		for {
			err := r.RecvTimeout(w, 0, dst, 0, n, memmodel.Temporal, 5e-5)
			if err == nil {
				t.Error("expected a mid-message abandon, message completed")
				return
			}
			var te *TimeoutError
			errors.As(err, &te)
			if te != nil && te.Done > 0 {
				break
			}
		}
		defer func() {
			if recover() != nil {
				panicked = true
				// Finish the drain so the run ends cleanly.
				for r.RecvTimeout(w, 0, dst, 0, n, memmodel.Temporal, 1) != nil {
				}
			}
		}()
		r.RecvReduce(w, 0, dst, 0, n, Sum)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !panicked {
		t.Error("RecvReduce accepted a mid-message channel")
	}
}
