package mpi

import (
	"testing"

	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

// ladderProgram: rank r's single step waits on rank r-1 and takes r+1 ticks.
type ladderProgram struct{ ranks int }

func (p *ladderProgram) Ranks() int                 { return p.ranks }
func (p *ladderProgram) Steps(int) int              { return 1 }
func (p *ladderProgram) Duration(r, _ int) sim.Tick { return sim.Tick(r + 1) }
func (p *ladderProgram) Deps(r, _ int, visit func(int, int) bool) {
	if r > 0 {
		visit(r-1, 0)
	}
}

func TestMachineRunProgram(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, false)
	prog := &ladderProgram{ranks: 16}
	// Makespan = sum of 1..16 ticks = 136 ticks.
	want := sim.Tick(136).Seconds()
	for _, kind := range []sim.EngineKind{sim.EngineCoroutine, sim.EngineEvent} {
		sec, err := m.RunProgram(prog, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sec != want {
			t.Fatalf("%v: makespan %v s, want %v s", kind, sec, want)
		}
	}
}
