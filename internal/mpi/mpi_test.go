package mpi

import (
	"fmt"
	"testing"
	"testing/quick"

	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

func TestMachineBindingAndComms(t *testing.T) {
	m := NewMachine(topo.NodeA(), 64, false)
	if m.Size() != 64 {
		t.Fatalf("size = %d", m.Size())
	}
	if m.World().Size() != 64 {
		t.Fatalf("world size = %d", m.World().Size())
	}
	s0, s1 := m.SocketComm(0), m.SocketComm(1)
	if s0.Size() != 32 || s1.Size() != 32 {
		t.Fatalf("socket comms %d/%d, want 32/32", s0.Size(), s1.Size())
	}
	if s1.GlobalRank(0) != 32 {
		t.Fatalf("socket1 first rank = %d, want 32", s1.GlobalRank(0))
	}
	if s1.CommRank(40) != 8 {
		t.Fatalf("comm rank of 40 = %d, want 8", s1.CommRank(40))
	}
	if s0.CommRank(40) != -1 {
		t.Fatalf("rank 40 should not be in socket0")
	}
}

func TestMachineTooManyRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(topo.NodeA(), 65, false)
}

func TestRunSpawnsAllRanks(t *testing.T) {
	m := NewMachine(topo.NodeB(), 48, false)
	seen := make([]bool, 48)
	_, err := m.Run(func(r *Rank) {
		seen[r.ID()] = true
		if r.Size() != 48 {
			t.Errorf("rank %d sees size %d", r.ID(), r.Size())
		}
		if r.Core() != r.ID() {
			t.Errorf("rank %d on core %d", r.ID(), r.Core())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestSharedBufferMemoization(t *testing.T) {
	m := NewMachine(topo.NodeA(), 4, false)
	var bufs []*memmodel.Buffer
	m.MustRun(func(r *Rank) {
		bufs = append(bufs, r.World().Shared("seg", 0, 100))
	})
	for _, b := range bufs[1:] {
		if b != bufs[0] {
			t.Fatal("ranks received different buffers for the same label")
		}
	}
}

func TestSharedBufferShapeMismatchPanics(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MustRun(func(r *Rank) {
		r.World().Shared("seg", 0, 100)
		r.World().Shared("seg", 0, 200)
	})
}

func TestCopyElemsMovesDataAndCharges(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, true)
	m.MustRun(func(r *Rank) {
		src := r.NewBuffer("src", 64)
		dst := r.NewBuffer("dst", 64)
		r.FillPattern(src, 1000)
		r.CopyElems(dst, 0, src, 0, 64, memmodel.Temporal)
		for i, v := range dst.Slice(0, 64) {
			if v != 1000+float64(i) {
				t.Fatalf("dst[%d] = %v", i, v)
			}
		}
	})
	c := m.Model.Counters()
	if c.LoadBytes != 64*8 || c.StoreBytes != 64*8 {
		t.Errorf("logical bytes: loads %d stores %d, want 512/512", c.LoadBytes, c.StoreBytes)
	}
	// Private-to-private copy does not count toward V.
	if c.CopyVolume != 0 {
		t.Errorf("copy volume = %d, want 0 for private->private", c.CopyVolume)
	}
}

func TestCopyVolumeCountedAcrossSpaces(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, true)
	m.MustRun(func(r *Rank) {
		src := r.NewBuffer("src", 64)
		shmBuf := r.World().Shared("seg", 0, 64)
		r.CopyElems(shmBuf, 0, src, 0, 64, memmodel.Temporal)
	})
	if got := m.Model.Counters().CopyVolume; got != 2*64*8 {
		t.Errorf("copy volume = %d, want %d", got, 2*64*8)
	}
}

func TestAccumulateAndCombine(t *testing.T) {
	m := NewMachine(topo.NodeA(), 1, true)
	m.MustRun(func(r *Rank) {
		a := r.NewBuffer("a", 8)
		b := r.NewBuffer("b", 8)
		c := r.NewBuffer("c", 8)
		r.FillPattern(a, 0)  // 0..7
		r.FillPattern(b, 10) // 10..17
		r.AccumulateElems(a, 0, b, 0, 8, Sum, memmodel.Temporal)
		for i, v := range a.Slice(0, 8) {
			if v != float64(2*i+10) {
				t.Fatalf("a[%d] = %v, want %v", i, v, 2*i+10)
			}
		}
		r.CombineElems(c, 0, a, 0, b, 0, 8, Max, memmodel.Temporal)
		for i, v := range c.Slice(0, 8) {
			want := float64(2*i + 10) // a >= b everywhere
			if v != want {
				t.Fatalf("c[%d] = %v, want %v", i, v, want)
			}
		}
	})
	// DAV of one accumulate + one combine: (2 loads + 1 store) x 2 x 8 elems.
	c := m.Model.Counters()
	if got, want := c.DAV(), int64(2*3*8*8); got != want {
		t.Errorf("DAV = %d, want %d", got, want)
	}
}

func TestOpsTable(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{Sum, 2, 3, 5},
		{Max, 2, 3, 3},
		{Min, 2, 3, 2},
		{Prod, 2, 3, 6},
	}
	for _, c := range cases {
		dst := []float64{c.a}
		c.op.Apply(dst, []float64{c.b})
		if dst[0] != c.want {
			t.Errorf("%s.Apply(%v,%v) = %v, want %v", c.op.Name, c.a, c.b, dst[0], c.want)
		}
		out := []float64{0}
		c.op.Combine(out, []float64{c.a}, []float64{c.b})
		if out[0] != c.want {
			t.Errorf("%s.Combine = %v, want %v", c.op.Name, out[0], c.want)
		}
	}
}

func TestSendRecvDeliversData(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	const n = 20000 // > 2 chunks
	m.MustRun(func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("buf", n)
		if r.ID() == 0 {
			r.FillPattern(buf, 5)
			r.Send(w, 1, buf, 0, n)
		} else {
			r.Recv(w, 0, buf, 0, n, memmodel.Temporal)
			for i := int64(0); i < n; i += 999 {
				if got := buf.Slice(i, 1)[0]; got != 5+float64(i) {
					t.Errorf("recv[%d] = %v, want %v", i, got, 5+float64(i))
				}
			}
		}
	})
}

func TestSendRecvBackToBackMessages(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	const n = 9000
	m.MustRun(func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("buf", n)
		for round := 0; round < 3; round++ {
			if r.ID() == 0 {
				r.FillPattern(buf, float64(round*100000))
				r.Send(w, 1, buf, 0, n)
			} else {
				r.Recv(w, 0, buf, 0, n, memmodel.Temporal)
				if got := buf.Slice(n-1, 1)[0]; got != float64(round*100000)+float64(n-1) {
					t.Errorf("round %d: tail = %v", round, got)
				}
			}
		}
	})
}

func TestRecvReduceFusesReduction(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, true)
	const n = 100
	m.MustRun(func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("buf", n)
		r.FillPattern(buf, float64(r.ID()*1000)) // r0: 0.., r1: 1000..
		if r.ID() == 0 {
			r.Send(w, 1, buf, 0, n)
		} else {
			r.RecvReduce(w, 0, buf, 0, n, Sum)
			for i := int64(0); i < n; i++ {
				want := float64(1000) + 2*float64(i)
				if got := buf.Slice(i, 1)[0]; got != want {
					t.Fatalf("reduced[%d] = %v, want %v", i, got, want)
				}
			}
		}
	})
}

func TestRingSendRecvAllRanksProgress(t *testing.T) {
	// A full ring exchange must complete (deadlock-freedom of buffered
	// sends) and deliver correct data.
	const p = 8
	const n = 30000 // several chunks
	m := NewMachine(topo.NodeA(), p, true)
	var final [p]float64
	m.MustRun(func(r *Rank) {
		w := r.World()
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		next := (r.ID() + 1) % p
		prev := (r.ID() + p - 1) % p
		r.SendRecv(w, next, sb, 0, n, prev, rb, 0, n, memmodel.Temporal)
		final[r.ID()] = rb.Slice(0, 1)[0]
	})
	for i := 0; i < p; i++ {
		want := float64((i + p - 1) % p)
		if final[i] != want {
			t.Errorf("rank %d received from %v, want %v", i, final[i], want)
		}
	}
}

func TestRingIsParallelNotSerialized(t *testing.T) {
	// The makespan of a simultaneous ring shift must be far below p x the
	// single-transfer time: buffered sends keep the ring parallel.
	const p = 16
	const n = 1 << 16
	single := NewMachine(topo.NodeA(), p, false)
	t1 := single.MustRun(func(r *Rank) {
		w := r.World()
		b := r.NewBuffer("b", n)
		switch r.ID() {
		case 0:
			r.Send(w, 1, b, 0, n)
		case 1:
			r.Recv(w, 0, b, 0, n, memmodel.Temporal)
		}
	})
	ring := NewMachine(topo.NodeA(), p, false)
	tp := ring.MustRun(func(r *Rank) {
		w := r.World()
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.SendRecv(w, (r.ID()+1)%p, sb, 0, n, (r.ID()+p-1)%p, rb, 0, n, memmodel.Temporal)
	})
	if tp > 4*t1 {
		t.Errorf("ring shift took %.3g, single transfer %.3g: ring appears serialized", tp, t1)
	}
}

func TestBarrierAcrossRanks(t *testing.T) {
	m := NewMachine(topo.NodeA(), 8, false)
	times := make([]float64, 8)
	m.MustRun(func(r *Rank) {
		r.Compute(float64(r.ID()) * 1e-6)
		r.World().Barrier().Arrive(r.Proc())
		times[r.ID()] = r.Now()
	})
	for i := 1; i < 8; i++ {
		if times[i] != times[0] {
			t.Fatalf("ranks left barrier at different times: %v", times)
		}
	}
	if times[0] < 7e-6 {
		t.Fatalf("barrier released before last arrival: %g", times[0])
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() float64 {
		m := NewMachine(topo.NodeA(), 16, false)
		return m.MustRun(func(r *Rank) {
			w := r.World()
			sb := r.NewBuffer("sb", 5000)
			rb := r.NewBuffer("rb", 5000)
			for round := 0; round < 3; round++ {
				r.SendRecv(w, (r.ID()+1)%16, sb, 0, 5000,
					(r.ID()+15)%16, rb, 0, 5000, memmodel.Temporal)
				w.Barrier().Arrive(r.Proc())
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic makespan: %v vs %v", a, b)
	}
}

func TestSendRecvSizeProperty(t *testing.T) {
	// Property: any message size survives the chunking round trip intact.
	f := func(raw uint16) bool {
		n := int64(raw%40000) + 1
		m := NewMachine(topo.NodeA(), 2, true)
		ok := true
		m.MustRun(func(r *Rank) {
			w := r.World()
			buf := r.NewBuffer("buf", n)
			if r.ID() == 0 {
				r.FillPattern(buf, 7)
				r.Send(w, 1, buf, 0, n)
			} else {
				r.Recv(w, 0, buf, 0, n, memmodel.Temporal)
				if buf.Slice(n-1, 1)[0] != 7+float64(n-1) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorOnDeadlock(t *testing.T) {
	m := NewMachine(topo.NodeA(), 2, false)
	_, err := m.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.World().Flags("never")[1].Wait(r.Proc(), r.Core(), 1)
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSocketCommSharedResourcesDistinct(t *testing.T) {
	m := NewMachine(topo.NodeA(), 64, false)
	var b0, b1 *memmodel.Buffer
	m.MustRun(func(r *Rank) {
		b := r.SocketComm().Shared("seg", r.Socket(), 10)
		if r.ID() == 0 {
			b0 = b
		}
		if r.ID() == 32 {
			b1 = b
		}
	})
	if b0 == b1 {
		t.Fatal("socket comms share a buffer")
	}
	if b0.Home != 0 || b1.Home != 1 {
		t.Fatalf("homes = %d/%d, want 0/1", b0.Home, b1.Home)
	}
}

func TestExplicitBindingSpreadsSockets(t *testing.T) {
	// Scatter binding: rank i on socket i%2.
	node := topo.NodeA()
	cores := []int{0, 32, 1, 33}
	m := NewMachineWithBinding(node, cores, false)
	if m.SocketComm(0).Size() != 2 || m.SocketComm(1).Size() != 2 {
		t.Fatal("scatter binding not reflected in socket comms")
	}
	names := map[int]int{}
	m.MustRun(func(r *Rank) {
		names[r.ID()] = r.Socket()
	})
	want := map[int]int{0: 0, 1: 1, 2: 0, 3: 1}
	for k, v := range want {
		if names[k] != v {
			t.Errorf("rank %d on socket %d, want %d", k, names[k], v)
		}
	}
}

func ExampleMachine_Run() {
	m := NewMachine(topo.NodeA(), 2, true)
	makespan := m.MustRun(func(r *Rank) {
		w := r.World()
		buf := r.NewBuffer("buf", 4)
		if r.ID() == 0 {
			copy(buf.Slice(0, 4), []float64{1, 2, 3, 4})
			r.Send(w, 1, buf, 0, 4)
		} else {
			r.Recv(w, 0, buf, 0, 4, memmodel.Temporal)
			fmt.Println(buf.Slice(0, 4))
		}
	})
	fmt.Println(makespan > 0)
	// Output:
	// [1 2 3 4]
	// true
}
