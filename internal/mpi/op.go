// Package mpi implements the intra-node MPI-rank runtime the collectives in
// internal/coll are written against: a Machine (topology + memory model +
// rank binding), communicators with shared resources (shared-memory
// segments, flags, barriers), modelled data-movement primitives, and
// shared-memory point-to-point Send/Recv for the send/recv-based baseline
// algorithms.
//
// Ranks execute as processes of the deterministic discrete-event engine in
// internal/sim; every data operation advances the acting rank's virtual
// clock through the memory cost model in internal/memmodel.
package mpi

// Op is a binary reduction operation over float64 elements, the element
// type of all modelled payloads.
type Op struct {
	// Name identifies the op ("sum", "max", ...).
	Name string
	// apply computes dst[i] = op(dst[i], src[i]).
	apply func(dst, src []float64)
	// combine computes out[i] = op(a[i], b[i]).
	combine func(out, a, b []float64)
}

// Apply folds src into dst element-wise.
func (o Op) Apply(dst, src []float64) { o.apply(dst, src) }

// Combine writes op(a, b) into out element-wise.
func (o Op) Combine(out, a, b []float64) { o.combine(out, a, b) }

// Sum is the + reduction (MPI_SUM).
var Sum = Op{
	Name: "sum",
	apply: func(dst, src []float64) {
		for i := range dst {
			dst[i] += src[i]
		}
	},
	combine: func(out, a, b []float64) {
		for i := range out {
			out[i] = a[i] + b[i]
		}
	},
}

// Max is the elementwise-maximum reduction (MPI_MAX).
var Max = Op{
	Name: "max",
	apply: func(dst, src []float64) {
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	},
	combine: func(out, a, b []float64) {
		for i := range out {
			if a[i] > b[i] {
				out[i] = a[i]
			} else {
				out[i] = b[i]
			}
		}
	},
}

// Min is the elementwise-minimum reduction (MPI_MIN).
var Min = Op{
	Name: "min",
	apply: func(dst, src []float64) {
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	},
	combine: func(out, a, b []float64) {
		for i := range out {
			if a[i] < b[i] {
				out[i] = a[i]
			} else {
				out[i] = b[i]
			}
		}
	},
}

// Prod is the elementwise-product reduction (MPI_PROD).
var Prod = Op{
	Name: "prod",
	apply: func(dst, src []float64) {
		for i := range dst {
			dst[i] *= src[i]
		}
	},
	combine: func(out, a, b []float64) {
		for i := range out {
			out[i] = a[i] * b[i]
		}
	},
}
