package mpi

import (
	"testing"

	"yhccl/internal/memmodel"
	"yhccl/internal/topo"
)

// contendedCopy is a bandwidth-bound rank body: stream a DRAM-sized buffer
// through a non-temporal copy, the access pattern the paper's cost model is
// calibrated on.
func contendedCopy(n int64) func(r *Rank) {
	return func(r *Rank) {
		src := r.PersistentBuffer("ct/src", n)
		dst := r.PersistentBuffer("ct/dst", n)
		r.CopyElems(dst, 0, src, 0, n, memmodel.NonTemporal)
	}
}

// TestContentionMonotonic proves a co-tenant job is strictly slower than
// the same job solo, and that more neighbors slow it further.
func TestContentionMonotonic(t *testing.T) {
	node := topo.NodeA()
	cores := []int{0, 1, 2, 3}
	const n = 1 << 20 // 8 MB per rank: DRAM-bound
	run := func(ext []int) float64 {
		m := NewMachineWithContention(node, cores, ext, false)
		return m.MustRun(contendedCopy(n))
	}
	solo := run(nil)
	co8 := run([]int{8, 0})
	co24 := run([]int{24, 0})
	if !(solo < co8) {
		t.Errorf("co-tenant (8 ext) %v not strictly slower than solo %v", co8, solo)
	}
	if !(co8 < co24) {
		t.Errorf("24 ext %v not strictly slower than 8 ext %v", co24, co8)
	}
}

// TestContentionSoloIdentity proves the nil-external machine is
// bit-identical to NewMachineWithBinding for the same workload.
func TestContentionSoloIdentity(t *testing.T) {
	node := topo.NodeB()
	cores := []int{0, 1, 2, 3, 4, 5}
	const n = 1 << 16
	a := NewMachineWithBinding(node, cores, false).MustRun(contendedCopy(n))
	b := NewMachineWithContention(node, cores, nil, false).MustRun(contendedCopy(n))
	c := NewMachineWithContention(node, cores, []int{0, 0}, false).MustRun(contendedCopy(n))
	if a != b || a != c {
		t.Errorf("solo makespans diverge: binding %v, nil-ext %v, zero-ext %v", a, b, c)
	}
}

// TestContentionSurvivesShrink proves Shrink carries the co-tenancy state
// into the survivor machine: the shrunk machine's model still counts the
// neighbors.
func TestContentionSurvivesShrink(t *testing.T) {
	node := topo.NodeA()
	cores := []int{0, 1, 2, 3}
	m := NewMachineWithContention(node, cores, []int{8, 0}, false)
	nm, _, err := m.Shrink([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := nm.Model.ExternalOnSocket(0); got != 8 {
		t.Errorf("shrunk machine external = %d, want 8", got)
	}
	ext := nm.External()
	if len(ext) != 2 || ext[0] != 8 {
		t.Errorf("shrunk machine External() = %v, want [8 0]", ext)
	}
}

// TestContentionSurvivesQuarantine proves a rebind (quarantine onto a
// spare) keeps the co-tenancy state.
func TestContentionSurvivesQuarantine(t *testing.T) {
	node := topo.NodeA()
	cores := []int{0, 1, 2, 3}
	m := NewMachineWithContention(node, cores, []int{8, 0}, false)
	m.spareCores = []int{10}
	if _, err := m.Quarantine(2); err != nil {
		t.Fatal(err)
	}
	if got := m.Model.ExternalOnSocket(0); got != 8 {
		t.Errorf("post-quarantine external = %d, want 8", got)
	}
}
