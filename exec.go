package yhccl

import (
	"fmt"

	"yhccl/internal/coll"
)

// Unified request API: every collective the library implements is reachable
// through one entry point, Exec, driven by a declarative Req. The historic
// N x 4 matrix of entry points (Allreduce / TunedAllreduce /
// ResilientAllreduce-style dispatch / AllreduceAlg, times nine collectives)
// collapses into one dispatcher; the old functions remain as thin
// Deprecated wrappers so existing callers keep compiling.

// Req describes one collective call declaratively: which collective, which
// algorithm (or tuned/resilient dispatch), the buffers it moves, and the
// rooted/reduction parameters where the collective needs them.
//
// Field semantics:
//
//   - Collective: "allreduce", "reduce-scatter", "reduce", "bcast",
//     "allgather", "gather", "scatter", "alltoall", "scan" (aliases
//     "reducescatter" and "broadcast" are accepted).
//   - Alg: registry algorithm name (see AlgorithmNames); "" selects the
//     collective's default ("yhccl").
//   - Tuned: dispatch through the machine's attached tuned-plan table
//     (paper collectives only); the plan picks the algorithm, so Tuned is
//     incompatible with a non-empty Alg and with Resilience.
//   - Resilience: dispatch through the fallback chain (paper collectives
//     only): the primary is Alg (or the default), and
//     Options.FallbackDepth selects the chain entry, exactly as the
//     recovery supervisor does. The implementation is instrumented so a
//     hang or crash is attributed to "collective/algorithm".
//   - Root: the root rank for reduce, bcast, gather and scatter.
//   - Op: the reduction operation for reducing collectives; the zero Op
//     defaults to Sum.
//   - Send/Recv: the buffers. Bcast operates in place on Send (Recv is
//     accepted as an alias when Send is nil); all other collectives read
//     Send and write Recv.
//   - Count: the per-rank element count n. Buffer shapes follow each
//     collective's convention (e.g. all-gather reads n elements from Send
//     and writes p*n to Recv).
type Req struct {
	Collective string
	Alg        string
	Tuned      bool
	Resilience bool
	Root       int
	Op         Op
	Options    Options
	Send       *Buffer
	Recv       *Buffer
	Count      int64
}

// paperCollective reports whether Tuned/Resilience dispatch exists for the
// collective (the five the paper evaluates).
func paperCollective(c string) bool {
	switch c {
	case "allreduce", "reduce-scatter", "reduce", "bcast", "allgather":
		return true
	}
	return false
}

// normalizeCollective folds accepted aliases onto canonical names.
func normalizeCollective(c string) string {
	switch c {
	case "reducescatter":
		return "reduce-scatter"
	case "broadcast":
		return "bcast"
	}
	return c
}

// validate checks the request's cross-field constraints and returns the
// canonicalized request.
func (q Req) validate() (Req, error) {
	q.Collective = normalizeCollective(q.Collective)
	switch q.Collective {
	case "allreduce", "reduce-scatter", "reduce", "bcast", "allgather",
		"gather", "scatter", "alltoall", "scan":
	case "":
		return q, fmt.Errorf("yhccl: Req.Collective is empty")
	default:
		return q, fmt.Errorf("yhccl: unknown collective %q", q.Collective)
	}
	if q.Count <= 0 {
		return q, fmt.Errorf("yhccl: %s: Req.Count must be positive, got %d", q.Collective, q.Count)
	}
	if q.Tuned && q.Resilience {
		return q, fmt.Errorf("yhccl: %s: Tuned and Resilience are mutually exclusive", q.Collective)
	}
	if q.Tuned && q.Alg != "" {
		return q, fmt.Errorf("yhccl: %s: Tuned dispatch picks the algorithm; Alg %q conflicts", q.Collective, q.Alg)
	}
	if (q.Tuned || q.Resilience) && !paperCollective(q.Collective) {
		mode := "Tuned"
		if q.Resilience {
			mode = "Resilience"
		}
		return q, fmt.Errorf("yhccl: %s: %s dispatch covers only the paper collectives (allreduce, reduce-scatter, reduce, bcast, allgather)", q.Collective, mode)
	}
	if q.Collective == "bcast" {
		if q.Send == nil {
			q.Send = q.Recv
		}
		if q.Send == nil {
			return q, fmt.Errorf("yhccl: bcast: Req.Send (in-place buffer) is nil")
		}
	} else {
		if q.Send == nil || q.Recv == nil {
			return q, fmt.Errorf("yhccl: %s: Req.Send and Req.Recv must both be set", q.Collective)
		}
	}
	if q.Op.Name == "" {
		q.Op = Sum
	}
	if q.Alg == "" {
		q.Alg = "yhccl"
	}
	return q, nil
}

// Exec runs one collective described by q on r's world communicator. It is
// the single entry point behind every per-collective function in this
// package; those remain as Deprecated wrappers. Exec returns an error for
// malformed requests (unknown collective or algorithm, conflicting
// dispatch modes, missing buffers) before any data moves; a valid request
// executes exactly what the corresponding legacy entry point would.
func Exec(r *Rank, q Req) error {
	q, err := q.validate()
	if err != nil {
		return err
	}
	c := r.World()
	sb, rb, n := q.Send, q.Recv, q.Count
	switch q.Collective {
	case "allreduce":
		if q.Tuned {
			coll.TunedAllreduce(plannerOf(r), r, c, sb, rb, n, q.Op, q.Options)
			return nil
		}
		f, err := resolveAR(q)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Op, q.Options)
	case "reduce-scatter":
		if q.Tuned {
			coll.TunedReduceScatter(plannerOf(r), r, c, sb, rb, n, q.Op, q.Options)
			return nil
		}
		f, err := resolveRS(q)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Op, q.Options)
	case "reduce":
		if q.Tuned {
			coll.TunedReduce(plannerOf(r), r, c, sb, rb, n, q.Op, q.Root, q.Options)
			return nil
		}
		f, err := resolveReduce(q)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Op, q.Root, q.Options)
	case "bcast":
		if q.Tuned {
			coll.TunedBcast(plannerOf(r), r, c, sb, n, q.Root, q.Options)
			return nil
		}
		f, err := resolveBcast(q)
		if err != nil {
			return err
		}
		f(r, c, sb, n, q.Root, q.Options)
	case "allgather":
		if q.Tuned {
			coll.TunedAllgather(plannerOf(r), r, c, sb, rb, n, q.Options)
			return nil
		}
		f, err := resolveAG(q)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Options)
	case "gather":
		f, err := coll.Lookup(coll.GatherAlgos, q.Alg)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Root, q.Options)
	case "scatter":
		f, err := coll.Lookup(coll.ScatterAlgos, q.Alg)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Root, q.Options)
	case "alltoall":
		f, err := coll.Lookup(coll.AlltoallAlgos, q.Alg)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Options)
	case "scan":
		f, err := coll.Lookup(coll.ScanAlgos, q.Alg)
		if err != nil {
			return err
		}
		f(r, c, sb, rb, n, q.Op, q.Options)
	}
	return nil
}

// MustExec is Exec for requests known valid by construction; it panics on
// the errors Exec would return.
func MustExec(r *Rank, q Req) {
	if err := Exec(r, q); err != nil {
		panic(err)
	}
}

// resolveAR picks the all-reduce implementation for a validated request:
// resilient chain dispatch when asked, plain registry lookup otherwise
// (uninstrumented, keeping the healthy path identical to a direct call).
func resolveAR(q Req) (coll.ARFunc, error) {
	if q.Resilience {
		_, f, err := coll.ResilientAR(q.Alg, q.Options)
		return f, err
	}
	return coll.Lookup(coll.AllreduceAlgos, q.Alg)
}

func resolveRS(q Req) (coll.RSFunc, error) {
	if q.Resilience {
		_, f, err := coll.ResilientRS(q.Alg, q.Options)
		return f, err
	}
	return coll.Lookup(coll.ReduceScatterAlgos, q.Alg)
}

func resolveReduce(q Req) (coll.ReduceFunc, error) {
	if q.Resilience {
		_, f, err := coll.ResilientReduce(q.Alg, q.Options)
		return f, err
	}
	return coll.Lookup(coll.ReduceAlgos, q.Alg)
}

func resolveBcast(q Req) (coll.BcastFunc, error) {
	if q.Resilience {
		_, f, err := coll.ResilientBcast(q.Alg, q.Options)
		return f, err
	}
	return coll.Lookup(coll.BcastAlgos, q.Alg)
}

func resolveAG(q Req) (coll.AGFunc, error) {
	if q.Resilience {
		_, f, err := coll.ResilientAG(q.Alg, q.Options)
		return f, err
	}
	return coll.Lookup(coll.AllgatherAlgos, q.Alg)
}
