#!/bin/sh
# Regenerates BENCH_sim.json: simulator self-performance baseline
# (engine control-transfer and residency-tracker micro-benchmarks plus
# the wall-clock time of the fig11a quick sweep). Pass -skip-fig to
# skip the sweep. Progress goes to stderr; the JSON is written atomically.
set -e
cd "$(dirname "$0")/.."
go run ./cmd/simbench "$@" > BENCH_sim.json.tmp
mv BENCH_sim.json.tmp BENCH_sim.json
echo "wrote BENCH_sim.json" >&2
