// Package yhccl is a Go reproduction of "Optimizing MPI Collectives on
// Shared Memory Multi-Cores" (Peng et al., SC'23): the YHCCL collective
// communication library — movement-avoiding (MA) reduction algorithms and
// adaptive non-temporal-store pipelined collectives — together with every
// baseline the paper evaluates against, running on a deterministic
// simulation of the paper's multi-core nodes.
//
// The public API wraps the internal packages into the shape an MPI-style
// user expects:
//
//	node := yhccl.NodeA()                     // 2x32-core EPYC description
//	m := yhccl.NewMachine(node, 64, true)     // 64 ranks, real data
//	m.MustRun(func(r *yhccl.Rank) {
//	    sb := r.NewBuffer("sb", 1<<20)
//	    rb := r.NewBuffer("rb", 1<<20)
//	    yhccl.Allreduce(r, sb, rb, 1<<20, yhccl.Sum, yhccl.Options{})
//	})
//
// Machines run either with real payloads (Real = true: every collective
// moves and reduces actual float64 data, validated by the test suite) or
// model-only (timing studies at paper scale, 64 KB-256 MB x 64 ranks,
// without allocating the payloads). Simulated time, data-access volume and
// DRAM-traffic counters are available from Machine.Model.
//
// See DESIGN.md for the system inventory and the paper-to-module map, and
// EXPERIMENTS.md for the reproduced tables and figures.
package yhccl

import (
	"yhccl/internal/coll"
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// Node describes a shared-memory node's topology and calibrated
// bandwidths.
type Node = topo.Node

// Machine binds a node, a memory cost model and a set of ranks.
type Machine = mpi.Machine

// Rank is one simulated MPI process.
type Rank = mpi.Rank

// Comm is a communicator.
type Comm = mpi.Comm

// Buffer is a modelled (optionally data-carrying) message buffer.
type Buffer = memmodel.Buffer

// Op is a reduction operation.
type Op = mpi.Op

// Options tunes algorithm selection, slice sizes and the copy policy.
type Options = coll.Options

// Policy selects a copy implementation (memmove, t-copy, nt-copy,
// adaptive).
type Policy = memcopy.Policy

// Reduction operations.
var (
	// Sum is MPI_SUM.
	Sum = mpi.Sum
	// Max is MPI_MAX.
	Max = mpi.Max
	// Min is MPI_MIN.
	Min = mpi.Min
	// Prod is MPI_PROD.
	Prod = mpi.Prod
)

// Copy policies (Fig. 12-14's contenders).
const (
	// Memmove is the C-library copy with a size-threshold NT switch.
	Memmove = memcopy.Memmove
	// TCopy always uses temporal stores.
	TCopy = memcopy.TCopy
	// NTCopy always uses non-temporal stores.
	NTCopy = memcopy.NTCopy
	// Adaptive is the paper's adaptive-copy (Algorithm 1).
	Adaptive = memcopy.Adaptive
)

// NodeA returns the 2 x 32-core AMD EPYC 7452 evaluation node.
func NodeA() *Node { return topo.NodeA() }

// NodeB returns the 2 x 24-core Intel Xeon Platinum 8163 node.
func NodeB() *Node { return topo.NodeB() }

// NodeC returns the 2 x 12-core Xeon E5-2692 v2 (Cluster C) node.
func NodeC() *Node { return topo.NodeC() }

// NewMachine creates a machine with p ranks block-bound to cores 0..p-1.
// real selects whether buffers carry actual data. If the repository's
// plans/ directory holds a tuned-plan cache for (node, p), it is loaded
// once and attached so the Tuned* entry points dispatch through it (see
// AttachPlans for explicit directories).
func NewMachine(node *Node, p int, real bool) *Machine {
	m := mpi.NewMachine(node, p, real)
	attachDefaultPlans(m)
	return m
}

// NewMachineWithBinding creates a machine with an explicit rank-to-core
// binding. Tuned plans for the rank count are attached as in NewMachine.
func NewMachineWithBinding(node *Node, rankCores []int, real bool) *Machine {
	m := mpi.NewMachineWithBinding(node, rankCores, real)
	attachDefaultPlans(m)
	return m
}

// Allreduce runs YHCCL's all-reduce (two-level parallel reduction below
// the small-message switch, socket-aware movement-avoiding reduction
// above) on the world communicator: rb = op over all ranks' sb.
//
// Deprecated: use Exec with Req{Collective: "allreduce"}.
func Allreduce(r *Rank, sb, rb *Buffer, n int64, op Op, o Options) {
	MustExec(r, Req{Collective: "allreduce", Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// ReduceScatter runs YHCCL's reduce-scatter: sb holds p blocks of n
// elements; rank i receives the reduction of block i in rb.
//
// Deprecated: use Exec with Req{Collective: "reduce-scatter"}.
func ReduceScatter(r *Rank, sb, rb *Buffer, n int64, op Op, o Options) {
	MustExec(r, Req{Collective: "reduce-scatter", Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// Reduce runs YHCCL's rooted reduce: root's rb receives the reduction.
//
// Deprecated: use Exec with Req{Collective: "reduce"}.
func Reduce(r *Rank, sb, rb *Buffer, n int64, op Op, root int, o Options) {
	MustExec(r, Req{Collective: "reduce", Send: sb, Recv: rb, Count: n, Op: op, Root: root, Options: o})
}

// Bcast runs YHCCL's adaptive pipelined broadcast over buf.
//
// Deprecated: use Exec with Req{Collective: "bcast"}.
func Bcast(r *Rank, buf *Buffer, n int64, root int, o Options) {
	MustExec(r, Req{Collective: "bcast", Send: buf, Count: n, Root: root, Options: o})
}

// Allgather runs YHCCL's adaptive pipelined all-gather: sb has n elements,
// rb receives p*n.
//
// Deprecated: use Exec with Req{Collective: "allgather"}.
func Allgather(r *Rank, sb, rb *Buffer, n int64, o Options) {
	MustExec(r, Req{Collective: "allgather", Send: sb, Recv: rb, Count: n, Options: o})
}

// Gather runs the shared-memory gather: root's rb receives p blocks of n.
//
// Deprecated: use Exec with Req{Collective: "gather"}.
func Gather(r *Rank, sb, rb *Buffer, n int64, root int, o Options) {
	MustExec(r, Req{Collective: "gather", Send: sb, Recv: rb, Count: n, Root: root, Options: o})
}

// Scatter runs the shared-memory scatter: root's sb holds p blocks of n;
// rank i's rb receives block i.
//
// Deprecated: use Exec with Req{Collective: "scatter"}.
func Scatter(r *Rank, sb, rb *Buffer, n int64, root int, o Options) {
	MustExec(r, Req{Collective: "scatter", Send: sb, Recv: rb, Count: n, Root: root, Options: o})
}

// Alltoall runs the cache-oblivious (Morton-order) personalized exchange:
// rank i's rb block j receives rank j's block i.
//
// Deprecated: use Exec with Req{Collective: "alltoall"}.
func Alltoall(r *Rank, sb, rb *Buffer, n int64, o Options) {
	MustExec(r, Req{Collective: "alltoall", Send: sb, Recv: rb, Count: n, Options: o})
}

// Scan runs the movement-avoiding chained inclusive prefix reduction:
// rank i's rb receives op over ranks 0..i.
//
// Deprecated: use Exec with Req{Collective: "scan"}.
func Scan(r *Rank, sb, rb *Buffer, n int64, op Op, o Options) {
	MustExec(r, Req{Collective: "scan", Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// AllreduceAlg, ReduceScatterAlg, ReduceAlg, BcastAlg and AllgatherAlg run
// a named algorithm from the registries (the baselines of Figs. 9-15):
// see AlgorithmNames.
//
// Deprecated: use Exec with Req{Collective: "allreduce", Alg: name}.
func AllreduceAlg(name string, r *Rank, sb, rb *Buffer, n int64, op Op, o Options) error {
	return Exec(r, Req{Collective: "allreduce", Alg: name, Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// ReduceScatterAlg runs a named reduce-scatter algorithm.
//
// Deprecated: use Exec with Req{Collective: "reduce-scatter", Alg: name}.
func ReduceScatterAlg(name string, r *Rank, sb, rb *Buffer, n int64, op Op, o Options) error {
	return Exec(r, Req{Collective: "reduce-scatter", Alg: name, Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// ReduceAlg runs a named rooted-reduce algorithm.
//
// Deprecated: use Exec with Req{Collective: "reduce", Alg: name}.
func ReduceAlg(name string, r *Rank, sb, rb *Buffer, n int64, op Op, root int, o Options) error {
	return Exec(r, Req{Collective: "reduce", Alg: name, Send: sb, Recv: rb, Count: n, Op: op, Root: root, Options: o})
}

// BcastAlg runs a named broadcast algorithm.
//
// Deprecated: use Exec with Req{Collective: "bcast", Alg: name}.
func BcastAlg(name string, r *Rank, buf *Buffer, n int64, root int, o Options) error {
	return Exec(r, Req{Collective: "bcast", Alg: name, Send: buf, Count: n, Root: root, Options: o})
}

// AllgatherAlg runs a named all-gather algorithm.
//
// Deprecated: use Exec with Req{Collective: "allgather", Alg: name}.
func AllgatherAlg(name string, r *Rank, sb, rb *Buffer, n int64, o Options) error {
	return Exec(r, Req{Collective: "allgather", Alg: name, Send: sb, Recv: rb, Count: n, Options: o})
}

// AlgorithmNames lists the registered algorithm names for a collective
// ("allreduce", "reduce-scatter", "reduce", "bcast", "allgather").
func AlgorithmNames(collective string) []string {
	switch collective {
	case "allreduce":
		return coll.Names(coll.AllreduceAlgos)
	case "reduce-scatter", "reducescatter":
		return coll.Names(coll.ReduceScatterAlgos)
	case "reduce":
		return coll.Names(coll.ReduceAlgos)
	case "bcast", "broadcast":
		return coll.Names(coll.BcastAlgos)
	case "allgather":
		return coll.Names(coll.AllgatherAlgos)
	case "gather":
		return coll.Names(coll.GatherAlgos)
	case "scatter":
		return coll.Names(coll.ScatterAlgos)
	case "alltoall":
		return coll.Names(coll.AlltoallAlgos)
	case "scan":
		return coll.Names(coll.ScanAlgos)
	}
	return nil
}
