// Package yhccl's benchmark suite: one testing.B benchmark per table and
// figure of the paper's evaluation (regenerating its series through the
// harness in internal/bench), plus direct micro-benchmarks of the core
// collectives and the ablation studies DESIGN.md §4 calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each harness benchmark reports the simulated time of the experiment's
// headline point as "sim-us/op" next to the real wall time Go measures.
package yhccl

import (
	"testing"

	"yhccl/internal/bench"
	"yhccl/internal/coll"
	"yhccl/internal/memcopy"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/topo"
)

// benchExperiment runs one harness experiment per iteration and reports
// the simulated microseconds of its last series point.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var lastSim float64
	for i := 0; i < b.N; i++ {
		f, err := bench.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		s := f.Series[0]
		lastSim = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(lastSim*1e6, "sim-us/op")
}

// Fig. 3: copy-out overhead vs slice size.
func BenchmarkFig3CopyOut(b *testing.B) { benchExperiment(b, "fig3") }

// Tables 1-3: DAV formula-vs-measured verification.
func BenchmarkTable1DAVReduceScatter(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2DAVAllreduce(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3DAVReduce(b *testing.B)        { benchExperiment(b, "table3") }

// Table 4: sliced STREAM copy bandwidths.
func BenchmarkTable4SlicedCopy(b *testing.B) { benchExperiment(b, "table4") }

// Table 5: CMA vs adaptive-copy patterns.
func BenchmarkTable5CMACopy(b *testing.B) { benchExperiment(b, "table5") }

// Figs. 9-11: the reduction-algorithm comparisons.
func BenchmarkFig9aReduceScatterNodeA(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9bReduceScatterNodeB(b *testing.B) { benchExperiment(b, "fig9b") }
func BenchmarkFig10aReduceNodeA(b *testing.B)       { benchExperiment(b, "fig10a") }
func BenchmarkFig10bReduceNodeB(b *testing.B)       { benchExperiment(b, "fig10b") }
func BenchmarkFig11aAllreduceNodeA(b *testing.B)    { benchExperiment(b, "fig11a") }
func BenchmarkFig11bAllreduceNodeB(b *testing.B)    { benchExperiment(b, "fig11b") }

// Figs. 12-14: adaptive NT-store collectives.
func BenchmarkFig12aAdaptiveAllreduceNodeA(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12bAdaptiveAllreduceNodeB(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkFig13aAdaptiveBcastNodeA(b *testing.B)     { benchExperiment(b, "fig13a") }
func BenchmarkFig13bAdaptiveBcastNodeB(b *testing.B)     { benchExperiment(b, "fig13b") }
func BenchmarkFig14aAdaptiveAllgatherNodeA(b *testing.B) { benchExperiment(b, "fig14a") }
func BenchmarkFig14bAdaptiveAllgatherNodeB(b *testing.B) { benchExperiment(b, "fig14b") }

// Fig. 15: against the state-of-the-art stand-ins.
func BenchmarkFig15aReduceScatterVsMPIs(b *testing.B) { benchExperiment(b, "fig15a") }
func BenchmarkFig15bReduceVsMPIs(b *testing.B)        { benchExperiment(b, "fig15b") }
func BenchmarkFig15cAllreduceVsMPIs(b *testing.B)     { benchExperiment(b, "fig15c") }
func BenchmarkFig15dBcastVsMPIs(b *testing.B)         { benchExperiment(b, "fig15d") }
func BenchmarkFig15eAllgatherVsMPIs(b *testing.B)     { benchExperiment(b, "fig15e") }

// Fig. 16: scalability.
func BenchmarkFig16aSingleNodeScalability(b *testing.B) { benchExperiment(b, "fig16a") }
func BenchmarkFig16bMultiNodeAllreduce(b *testing.B)    { benchExperiment(b, "fig16b") }

// Figs. 17-18: the applications.
func BenchmarkFig17MiniAMR(b *testing.B)           { benchExperiment(b, "fig17") }
func BenchmarkFig18aResNet50Training(b *testing.B) { benchExperiment(b, "fig18a") }
func BenchmarkFig18bVGG16Training(b *testing.B)    { benchExperiment(b, "fig18b") }

// Ablations (DESIGN.md §4).
func BenchmarkAblationSliceSize(b *testing.B)       { benchExperiment(b, "abl-slice") }
func BenchmarkAblationSocketAware(b *testing.B)     { benchExperiment(b, "abl-socket") }
func BenchmarkAblationCacheRule(b *testing.B)       { benchExperiment(b, "abl-cacherule") }
func BenchmarkAblationSwitchThreshold(b *testing.B) { benchExperiment(b, "abl-switch") }
func BenchmarkAblationRGDegree(b *testing.B)        { benchExperiment(b, "abl-rgdegree") }

// Direct micro-benchmarks: real wall time of the simulator executing one
// collective with real data — the engine-throughput numbers.

func benchCollective(b *testing.B, p int, elems int64, alg coll.ARFunc) {
	b.Helper()
	m := mpi.NewMachine(topo.NodeA(), p, true)
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim = m.MustRun(func(r *mpi.Rank) {
			sb := r.PersistentBuffer("b/sb", elems)
			rb := r.PersistentBuffer("b/rb", elems)
			alg(r, r.World(), sb, rb, elems, mpi.Sum, coll.Options{})
		})
	}
	b.ReportMetric(sim*1e6, "sim-us/op")
	b.SetBytes(elems * memmodel.ElemSize)
}

func BenchmarkAllreduceYHCCL64Ranks1MB(b *testing.B) {
	benchCollective(b, 64, 1<<17, coll.AllreduceYHCCL)
}

func BenchmarkAllreduceDPML64Ranks1MB(b *testing.B) {
	benchCollective(b, 64, 1<<17, coll.AllreduceDPML)
}

func BenchmarkAllreduceRing64Ranks1MB(b *testing.B) {
	benchCollective(b, 64, 1<<17, coll.AllreduceRing)
}

func BenchmarkAllreduceXPMEM64Ranks1MB(b *testing.B) {
	benchCollective(b, 64, 1<<17, coll.AllreduceXPMEM)
}

// BenchmarkEngineOpThroughput measures raw discrete-event engine overhead:
// ops/s of minimal Advance calls across 64 procs.
func BenchmarkEngineOpThroughput(b *testing.B) {
	m := mpi.NewMachine(topo.NodeA(), 64, false)
	buf := int64(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MustRun(func(r *mpi.Rank) {
			bbuf := r.PersistentBuffer("e/b", buf)
			for j := 0; j < 100; j++ {
				r.Load(bbuf, 0, buf)
			}
		})
	}
	b.SetBytes(64 * 100)
}

// BenchmarkAdaptiveCopyDecision measures the Decide fast path.
func BenchmarkAdaptiveCopyDecision(b *testing.B) {
	h := memcopy.Hints{NonTemporal: true, WorkSet: 1 << 30, AvailableCache: 1 << 28}
	for i := 0; i < b.N; i++ {
		_ = memcopy.Decide(memcopy.Adaptive, 1<<20, h)
	}
}
