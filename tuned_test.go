package yhccl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yhccl/internal/coll"
	"yhccl/internal/plan"
	"yhccl/internal/tune"
)

// tunedCacheDir builds a real tuned cache for NodeA p=4 in a temp dir.
func tunedCacheDir(t *testing.T, p int) string {
	t.Helper()
	cache, err := tune.Tune(tune.Config{Node: NodeA(), Ranks: p, Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := cache.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// AttachPlans + Tuned* is the documented runtime path: load once at machine
// creation, dispatch per call, results bit-exact.
func TestAttachPlansDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run in -short mode")
	}
	p, n := 4, int64(2048)
	dir := tunedCacheDir(t, p)
	m := NewMachine(NodeA(), p, true)
	if err := AttachPlans(m, dir); err != nil {
		t.Fatalf("attach: %v", err)
	}
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		TunedAllreduce(r, sb, rb, n, Sum, Options{})
		for j := int64(0); j < n; j += 13 {
			want := float64(p)*float64(j) + float64(p*(p-1))/2
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

// A corrupted cache must degrade to the hand-tuned switch — correct
// results, an error surfaced from AttachPlans, and no panic anywhere.
func TestAttachPlansCorruptedCacheDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning run in -short mode")
	}
	p, n := 4, int64(1024)
	dir := tunedCacheDir(t, p)
	path := filepath.Join(dir, plan.FileName(NodeA().Name, p))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(raw), "socket-ma", "socket-mb", 1)
	if corrupt == string(raw) {
		t.Fatal("corruption had no effect (no socket-ma entry?)")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(NodeA(), p, true)
	if err := AttachPlans(m, dir); err == nil {
		t.Error("corrupted cache attached without error")
	}
	// Second attach of the same file: the warning is per-process-once, and
	// the machine still runs untuned.
	if err := AttachPlans(m, dir); err == nil {
		t.Error("second attach of corrupted cache reported no error")
	}
	m.MustRun(func(r *Rank) {
		sb := r.NewBuffer("sb", n)
		rb := r.NewBuffer("rb", n)
		r.FillPattern(sb, float64(r.ID()))
		TunedAllreduce(r, sb, rb, n, Sum, Options{})
		for j := int64(0); j < n; j += 7 {
			want := float64(p)*float64(j) + float64(p*(p-1))/2
			if got := rb.Slice(j, 1)[0]; got != want {
				t.Errorf("rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
				return
			}
		}
	})
}

// A missing cache is silently untuned — not an error.
func TestAttachPlansMissingCache(t *testing.T) {
	m := NewMachine(NodeA(), 4, false)
	if err := AttachPlans(m, t.TempDir()); err != nil {
		t.Fatalf("missing cache should not error: %v", err)
	}
}

// NewMachine inside the repository auto-attaches the committed cache for
// its exact (topology, rank count): comm init loads the plans once, no
// AttachPlans call needed. Rank counts without a committed cache stay
// untuned.
func TestNewMachineAutoAttachesCommittedPlans(t *testing.T) {
	if PlanDir() == "" {
		t.Skip("not inside the repository")
	}
	if _, err := plan.Load(PlanDir(), NodeA(), 64); err != nil {
		t.Skipf("no committed NodeA p=64 cache: %v (regenerate with `make tune-full`)", err)
	}
	m := NewMachine(NodeA(), 64, false)
	if coll.PlannerOf(m) == nil {
		t.Error("NewMachine(NodeA, 64) did not attach the committed plan cache")
	}
	m2 := NewMachine(NodeA(), 5, false)
	if coll.PlannerOf(m2) != nil {
		t.Error("NewMachine(NodeA, 5) attached a planner with no committed cache for p=5")
	}
}
