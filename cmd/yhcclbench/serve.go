package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"yhccl/internal/resilient"
	"yhccl/internal/serve"
)

// defaultServeRates is the reference offered-load sweep (jobs per virtual
// second): light, moderate and saturating for the default mix on NodeA
// (mean service ~2 ms → the queueing knee sits near 1000 jobs/s).
var defaultServeRates = []float64{100, 400, 1600}

// serveGateP99Budget bounds the aggregate p99 makespan at every swept load
// point for the CI gate (virtual seconds). The saturating point of the
// default mix with a fault tenant sits well under a second; 2 s leaves
// headroom for model retuning without masking schedule regressions.
const serveGateP99Budget = 2.0

// serveOverloadJobs is the overload gate's stream length: long enough
// that the bounded queue demonstrably sheds at the overload rate.
const serveOverloadJobs = 400

// runServeOverload runs the overload gate: the deadline-annotated mix at
// 1.5x the saturating rate under a bounded admission queue.
func runServeOverload(w io.Writer, nodeName string, seed uint64, jobs int) error {
	node, err := nodeByName(nodeName)
	if err != nil {
		return err
	}
	return serve.OverloadGate(w, node, seed, jobs, serveGateP99Budget)
}

// parseRates converts a comma-separated -rates flag value.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return defaultServeRates, nil
	}
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || !(v > 0) {
			return nil, fmt.Errorf("bad rate %q (want positive numbers, comma-separated)", part)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// runServe runs the multi-tenant serving sweep: the default seeded mix
// (plus a fault-seeded chaos tenant when faults is true) at each offered
// rate, printing the throughput-vs-load table and, when verbose, each
// point's admission event log.
func runServe(w io.Writer, nodeName, placeName, ratesCSV string, seed uint64, jobs int, faults, gate, verbose bool) error {
	node, err := nodeByName(nodeName)
	if err != nil {
		return err
	}
	placement, err := serve.ParsePlacement(placeName)
	if err != nil {
		return err
	}
	rates, err := parseRates(ratesCSV)
	if err != nil {
		return err
	}
	mix := serve.DefaultMix()
	if faults {
		mix = append(mix, serve.JobSpec{
			Name:       "chaos-tenant",
			Collective: "allreduce",
			MsgBytes:   256 << 10,
			Calls:      4,
			Ranks:      4,
			Placement:  serve.PlacePack,
			Weight:     0.5,
			FaultSeed:  3,
		})
	}
	points, err := serve.Sweep(node, placement, mix, seed, jobs, rates, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving sweep: node=%s place=%s seed=%d jobs=%d faults=%v\n\n",
		node.Name, placement, seed, jobs, faults)
	fmt.Fprint(w, serve.Render(points))
	for _, lp := range points {
		if len(lp.Outcomes) > 1 || lp.Undiag > 0 {
			fmt.Fprintf(w, "\noutcomes at rate=%.3f:\n", lp.Rate)
			keys := make([]string, 0, len(lp.Outcomes))
			for out := range lp.Outcomes {
				keys = append(keys, string(out))
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "  %-24s %d\n", k, lp.Outcomes[resilient.Outcome(k)])
			}
		}
	}
	if verbose {
		for _, lp := range points {
			fmt.Fprintf(w, "\nevent log at rate=%.3f:\n", lp.Rate)
			for _, line := range lp.EventLog {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	}
	if gate {
		violations := serve.Gate(points, serveGateP99Budget)
		if len(violations) > 0 {
			fmt.Fprintf(w, "\nserve gate: FAIL\n")
			for _, v := range violations {
				fmt.Fprintf(w, "  %s\n", v)
			}
			return fmt.Errorf("serve gate: %d violations", len(violations))
		}
		fmt.Fprintf(w, "\nserve gate: PASS (zero UNDIAGNOSED, p99 within %.3fs at %d load points)\n",
			serveGateP99Budget, len(points))
	}
	return nil
}
