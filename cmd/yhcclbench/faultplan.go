package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"yhccl/internal/chaos"
	"yhccl/internal/cluster"
	"yhccl/internal/fault"
	"yhccl/internal/resilient"
)

// Fault-plan files: -fault-save generates a seeded plan (rank-level with
// -fault-ranks, cluster-level with -fault-shape NxP) and writes it as a
// versioned, checksummed JSON file; -fault-plan loads such a file and
// replays it under the matching resilient supervisor, so a failure seen
// in a sweep is reproducible from one small artifact.

// genHorizonTicks matches the virtual-time scale DefaultClusterCases
// generates seeded plans over, so saved cluster plans land mid-run.
const genHorizonTicks = 1_000_000

// parseShape converts a "NxP" -fault-shape value.
func parseShape(s string) (fault.ClusterShape, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return fault.ClusterShape{}, fmt.Errorf("bad shape %q (want NxP, e.g. 64x64)", s)
	}
	nodes, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	per, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || nodes < 2 || per < 1 {
		return fault.ClusterShape{}, fmt.Errorf("bad shape %q (want NxP with N>=2, P>=1)", s)
	}
	return fault.ClusterShape{Nodes: nodes, PerNode: per}, nil
}

// runFaultSave generates a plan from the seed and writes it to path.
// shapeCSV selects a cluster plan; otherwise ranks selects a rank plan.
func runFaultSave(w io.Writer, path, shapeCSV string, ranks int, seed uint64) error {
	if shapeCSV != "" {
		shape, err := parseShape(shapeCSV)
		if err != nil {
			return err
		}
		pl := fault.GenClusterPlan(seed, shape, genHorizonTicks)
		if err := fault.SaveClusterPlan(path, pl); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote cluster plan %s (seed %d, shape %s):\n%s\n", path, seed, shape, pl)
		return nil
	}
	if ranks < 2 {
		return fmt.Errorf("-fault-save needs -fault-shape NxP or -fault-ranks >= 2")
	}
	pl := fault.GenPlan(seed, ranks, 2e-4)
	if err := fault.SavePlan(path, pl, ranks); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote rank plan %s (seed %d, %d ranks):\n%s\n", path, seed, ranks, pl)
	return nil
}

// runFaultReplay loads a plan file and replays it under the matching
// supervisor: a rank plan through the recovery sweep's reference
// allreduce, a cluster plan through the cluster supervisor at the plan's
// shape. When the caller pins a world (-fault-shape for cluster plans,
// an explicit -fault-ranks for rank plans), the plan is validated against
// it BEFORE anything is armed — a plan whose node ids or ticks fall
// outside the declared world is rejected with the fault package's typed
// errors (fault.ErrPlanShape / fault.ErrPlanRange), not armed and left to
// misfire. Returns an error when the replay violates the recovery gate.
func runFaultReplay(w io.Writer, path, shapeCSV string, ranks int, ranksSet bool) error {
	pf, err := fault.LoadPlanFile(path)
	if err != nil {
		return err
	}
	switch {
	case pf.Rank != nil:
		if ranksSet {
			if err := pf.Rank.Validate(ranks); err != nil {
				return fmt.Errorf("plan %s does not fit -fault-ranks %d: %w", path, ranks, err)
			}
		}
		fmt.Fprintf(w, "replaying rank plan %s on %d ranks:\n%s\n\n", path, pf.Ranks, pf.Rank)
		res := chaos.RunRecover(chaos.Case{
			Collective: "allreduce", Algo: "yhccl",
			Ranks: pf.Ranks, Elems: 4096, Plan: pf.Rank,
		})
		if bad := chaos.ReportRecovery(w, []chaos.RecoveryResult{res}); bad > 0 {
			return fmt.Errorf("replay: %d recovery-gate violations", bad)
		}
	case pf.Cluster != nil:
		if shapeCSV != "" {
			shape, err := parseShape(shapeCSV)
			if err != nil {
				return err
			}
			if err := pf.Cluster.Validate(shape); err != nil {
				return fmt.Errorf("plan %s does not fit -fault-shape %s: %w", path, shape, err)
			}
		}
		sh := pf.Cluster.Shape
		fmt.Fprintf(w, "replaying cluster plan %s at %s:\n%s\n\n", path, sh, pf.Cluster)
		res := chaos.RunCluster(chaos.ClusterCase{
			Name: pf.Cluster.Name, Nodes: sh.Nodes, PerNode: sh.PerNode,
			Job: resilient.ClusterJob{
				Coll: cluster.CollAllreduce, Alg: cluster.YHCCLHierarchical, Elems: 1 << 16,
			},
			Plan: pf.Cluster,
		})
		if bad := chaos.ReportCluster(w, []chaos.ClusterResult{res}); bad > 0 {
			return fmt.Errorf("replay: %d cluster-gate violations", bad)
		}
	}
	return nil
}
