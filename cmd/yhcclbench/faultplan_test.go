package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"yhccl/internal/fault"
)

// A replayed cluster plan that does not fit the declared -fault-shape is
// rejected with the fault package's typed error BEFORE anything is armed.
func TestReplayRejectsMismatchedShape(t *testing.T) {
	pl := &fault.ClusterPlan{
		Name:    "wide",
		Shape:   fault.ClusterShape{Nodes: 8, PerNode: 4},
		Crashes: []fault.NodeCrash{{Node: 6, AtTick: 100}},
	}
	path := filepath.Join(t.TempDir(), "wide.json")
	if err := fault.SaveClusterPlan(path, pl); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runFaultReplay(&buf, path, "4x4", 8, false)
	if err == nil {
		t.Fatal("mismatched shape accepted")
	}
	if !errors.Is(err, fault.ErrPlanShape) {
		t.Fatalf("error %v does not wrap fault.ErrPlanShape", err)
	}
}

// An explicit -fault-ranks pins the rank-plan world: a plan naming ranks
// outside it is rejected with the range error before arming.
func TestReplayRejectsRankPlanOutsideWorld(t *testing.T) {
	pl := &fault.Plan{
		Name:        "r6",
		Corruptions: []fault.Corruption{{Rank: 6}},
	}
	path := filepath.Join(t.TempDir(), "r6.json")
	if err := fault.SavePlan(path, pl, 8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := runFaultReplay(&buf, path, "", 4, true)
	if err == nil {
		t.Fatal("rank plan outside -fault-ranks world accepted")
	}
	if !errors.Is(err, fault.ErrPlanRange) {
		t.Fatalf("error %v does not wrap fault.ErrPlanRange", err)
	}
	// Without the explicit flag the file's own recorded world stands.
	buf.Reset()
	if err := runFaultReplay(&buf, path, "", 4, false); err != nil {
		t.Fatalf("replay under the recorded world failed: %v", err)
	}
}
