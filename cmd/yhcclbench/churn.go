package main

import (
	"fmt"
	"io"

	"yhccl/internal/chaos"
	"yhccl/internal/serve"
)

// runChurn drives both churn gates back to back: the cluster gate
// (seeded crash->heal->rejoin cycles at 4096 ranks, every cycle must end
// recovered-by-rejoin at full membership under flat-memory budgets) and
// the serving gate (capacity shrink/grow cycles under the deadline mix at
// `load` times the saturating rate — leases drain, admitted jobs never
// miss deadlines). Either gate failing fails the run.
func runChurn(w io.Writer, nodeName string, cycles int, seed uint64, load float64) error {
	fmt.Fprintln(w, "=== cluster churn: crash -> heal -> rejoin ===")
	if bad := chaos.ChurnGate(w, cycles, seed); bad > 0 {
		return fmt.Errorf("%d cluster churn-gate violations", bad)
	}
	node, err := nodeByName(nodeName)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n=== serving churn: capacity shrink/grow under load ===")
	return serve.ChurnGate(w, node, serve.ChurnConfig{
		Seed:     seed,
		Cycles:   cycles,
		LoadMult: load,
	})
}
