package main

import (
	"fmt"
	"io"
	"strings"

	"yhccl/internal/plan"
	"yhccl/internal/topo"
	"yhccl/internal/tune"
)

// The -tune and -plan-verify modes: offline plan synthesis into the
// persistent cache, and the beats-or-matches gate against the figure
// baselines (exit 1 on the first sweep point a hand-written algorithm
// strictly wins).

// nodeByName resolves the evaluation-node descriptions by name.
func nodeByName(name string) (*topo.Node, error) {
	switch strings.ToLower(name) {
	case "nodea", "a":
		return topo.NodeA(), nil
	case "nodeb", "b":
		return topo.NodeB(), nil
	case "nodec", "c":
		return topo.NodeC(), nil
	}
	return nil, fmt.Errorf("unknown node %q (want NodeA, NodeB or NodeC)", name)
}

// runTune synthesizes the plan cache for one machine and saves it.
func runTune(w io.Writer, nodeName string, p int, dir string, quick bool, seed uint64) error {
	node, err := nodeByName(nodeName)
	if err != nil {
		return err
	}
	if dir == "" {
		dir = plan.DefaultDir()
		if dir == "" {
			return fmt.Errorf("not inside the repository; pass -plans <dir>")
		}
	}
	cache, err := tune.Tune(tune.Config{
		Node: node, Ranks: p, Quick: quick, Seed: seed,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	path, err := cache.Save(dir)
	if err != nil {
		return err
	}
	searched, extrapolated := 0, 0
	for _, e := range cache.Plans {
		switch e.Source {
		case "searched":
			searched++
		case "extrapolated":
			extrapolated++
		}
	}
	fmt.Fprintf(w, "wrote %s: %d plans (%d searched, %d extrapolated), checksum %s\n",
		path, len(cache.Plans), searched, extrapolated, cache.Checksum)
	return nil
}

// runPlanVerify loads the cache and runs the beats-or-matches gate.
func runPlanVerify(w io.Writer, nodeName string, p int, dir string, quick bool) error {
	node, err := nodeByName(nodeName)
	if err != nil {
		return err
	}
	if dir == "" {
		dir = plan.DefaultDir()
		if dir == "" {
			return fmt.Errorf("not inside the repository; pass -plans <dir>")
		}
	}
	cache, err := plan.Load(dir, node, p)
	if err != nil {
		return fmt.Errorf("load %s p=%d: %w", node.Name, p, err)
	}
	table, err := cache.Table()
	if err != nil {
		return err
	}
	points, gateErr := tune.Verify(node, p, table, quick)
	strict := 0
	for _, pt := range points {
		mark := " "
		if pt.Strict {
			mark = "*"
			strict++
		}
		fmt.Fprintf(w, "%s %-14s %9d B  tuned %-28s %.3es  best hand %-12s %.3es\n",
			mark, pt.Collective, pt.SizeBytes, pt.Family, pt.Tuned, pt.BestName, pt.BestHand)
	}
	fmt.Fprintf(w, "%d points, %d strict wins (* = strictly faster than every hand-written baseline)\n",
		len(points), strict)
	if gateErr != nil {
		return gateErr
	}
	if strict == 0 {
		return fmt.Errorf("plan-verify: no strict-win regime (gate requires at least one)")
	}
	return nil
}
