// Command yhcclbench regenerates the paper's tables and figures from the
// simulated machines.
//
// Usage:
//
//	yhcclbench -list                 # show all experiment ids
//	yhcclbench -exp fig9a            # regenerate one experiment
//	yhcclbench -exp all              # regenerate everything (slow)
//	yhcclbench -exp fig11a -quick    # 3-point sweep instead of 13
//	yhcclbench -exp all -csv out/    # also write out/<id>.csv per experiment
//	yhcclbench -exp fig9a -cpuprofile cpu.prof
//	yhcclbench -chaos                # fault-injection sweep (exit 1 on undiagnosed)
//	yhcclbench -chaos-recover        # supervised recovery sweep (exit 1 on gate violation)
//	yhcclbench -exp fig16scale -engine event
//	                                 # cluster-scale sweep on the event engine
//	yhcclbench -scale-gate           # 65536+ rank smoke under wall/memory budgets (exit 1 on violation)
//	yhcclbench -tune -node NodeA -p 64
//	                                 # synthesize the tuned-plan cache into plans/
//	yhcclbench -plan-verify -node NodeA -p 64
//	                                 # beats-or-matches gate vs the figure baselines (exit 1 on regression)
//	yhcclbench -serve                # multi-tenant serving sweep: throughput vs offered load
//	yhcclbench -serve -place spread -rates 10,40 -jobs 60 -v
//	yhcclbench -serve-gate           # serving sweep with a fault tenant (exit 1 on gate violation)
//	yhcclbench -serve-overload       # overload point at 1.5x saturation: bounded queue, deadlines (exit 1 on violation)
//	yhcclbench -chaos-cluster        # cluster-scale fault sweep at 4k-16k ranks (exit 1 on gate violation)
//	yhcclbench -churn                # membership-churn gates: crash->heal->rejoin at 4k ranks plus capacity
//	                                 # shrink/grow serving at 1.2x saturation (exit 1 on violation)
//	yhcclbench -fault-save p.json -fault-shape 64x64 -seed 7
//	                                 # write a seeded cluster fault plan as versioned JSON
//	yhcclbench -fault-plan p.json    # replay a saved fault plan under the matching supervisor
//	yhcclbench -fault-plan p.json -fault-shape 64x64
//	                                 # validate the plan against the declared world before arming
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"yhccl/internal/bench"
	"yhccl/internal/chaos"
	"yhccl/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		quick    = flag.Bool("quick", false, "trimmed sweeps for smoke runs")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		csvDir   = flag.String("csv", "", "directory to write one <id>.csv per experiment (created if missing)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		chaosF   = flag.Bool("chaos", false, "run the fault-injection chaos sweep and exit (nonzero if any case is undiagnosed)")
		recoverF = flag.Bool("chaos-recover", false, "run the chaos sweep under the resilient supervisor and exit (nonzero on any recovery-gate violation)")
		engine   = flag.String("engine", "", "simulation core for scale experiments: coroutine or event (default event)")
		scaleF   = flag.Bool("scale-gate", false, "run the cluster-scale smoke gate and exit (nonzero on any budget violation)")
		tuneF    = flag.Bool("tune", false, "synthesize the tuned-plan cache for -node/-p and exit")
		verifyF  = flag.Bool("plan-verify", false, "verify the tuned-plan cache beats or matches every figure baseline and exit (nonzero on regression)")
		nodeF    = flag.String("node", "NodeA", "machine for -tune/-plan-verify: NodeA, NodeB or NodeC")
		ranksF   = flag.Int("p", 64, "rank count for -tune/-plan-verify")
		plansF   = flag.String("plans", "", "plan-cache directory (default: the repository's plans/)")
		seedF    = flag.Uint64("seed", 42, "search seed recorded in the cache (-tune); arrival-stream seed (-serve)")
		serveF   = flag.Bool("serve", false, "run the multi-tenant serving sweep and exit")
		sGateF   = flag.Bool("serve-gate", false, "serving sweep with a fault tenant plus the CI gate: exit 1 on any UNDIAGNOSED job or p99 over budget")
		placeF   = flag.String("place", "auto", "placement policy for -serve: auto, pack or spread")
		ratesF   = flag.String("rates", "", "comma-separated offered loads in jobs/s for -serve (default 5,20,80)")
		jobsF    = flag.Int("jobs", 40, "arrival-stream length for -serve")
		faultsF  = flag.Bool("faults", false, "add a fault-seeded chaos tenant to the -serve mix")
		verboseF = flag.Bool("v", false, "print per-point admission event logs (-serve)")
		overF    = flag.Bool("serve-overload", false, "run the serving overload gate at 1.5x saturation: bounded queue sheds, zero deadline violations among admitted jobs (exit 1 on violation)")
		cChaosF  = flag.Bool("chaos-cluster", false, "run the cluster-scale fault sweep at 4k-16k ranks and exit (nonzero on any cluster-gate violation); -quick restricts to 4096 ranks")
		fSaveF   = flag.String("fault-save", "", "write a seeded fault plan to this JSON file (-fault-shape for a cluster plan, -fault-ranks for a rank plan)")
		fPlanF   = flag.String("fault-plan", "", "replay a saved fault-plan JSON file under the matching resilient supervisor (-fault-shape / -fault-ranks validate the plan against that world before arming)")
		fShapeF  = flag.String("fault-shape", "", "cluster shape NxP (e.g. 64x64) for -fault-save and -fault-plan validation")
		fRanksF  = flag.Int("fault-ranks", 8, "rank count for -fault-save rank plans and -fault-plan validation")
		churnF   = flag.Bool("churn", false, "run the membership-churn gates: cluster crash->heal->rejoin cycles plus capacity shrink/grow serving (exit 1 on violation)")
		churnCyc = flag.Int("churn-cycles", 8, "number of churn cycles for -churn (min 8)")
		churnLd  = flag.Float64("churn-load", 1.2, "serving load multiplier over the saturating rate for -churn")
	)
	flag.Parse()

	if *fSaveF != "" {
		if err := runFaultSave(os.Stdout, *fSaveF, *fShapeF, *fRanksF, *seedF); err != nil {
			fatalf("fault-save: %v", err)
		}
		return
	}
	if *fPlanF != "" {
		ranksSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "fault-ranks" {
				ranksSet = true
			}
		})
		if err := runFaultReplay(os.Stdout, *fPlanF, *fShapeF, *fRanksF, ranksSet); err != nil {
			fatalf("fault-plan: %v", err)
		}
		return
	}
	if *churnF {
		if err := runChurn(os.Stdout, *nodeF, *churnCyc, *seedF, *churnLd); err != nil {
			fatalf("churn: %v", err)
		}
		return
	}
	if *cChaosF {
		if bad := chaos.ReportCluster(os.Stdout, chaos.SweepCluster(chaos.DefaultClusterCases(*quick))); bad > 0 {
			os.Exit(1)
		}
		return
	}
	if *overF {
		jobs := *jobsF
		if jobs == 40 { // the -jobs default sizes the plain sweep; overload needs a longer stream
			jobs = serveOverloadJobs
		}
		if err := runServeOverload(os.Stdout, *nodeF, *seedF, jobs); err != nil {
			fatalf("serve-overload: %v", err)
		}
		return
	}

	if *serveF || *sGateF {
		faults := *faultsF || *sGateF
		if err := runServe(os.Stdout, *nodeF, *placeF, *ratesF, *seedF, *jobsF, faults, *sGateF, *verboseF); err != nil {
			fatalf("serve: %v", err)
		}
		return
	}

	if *tuneF {
		if err := runTune(os.Stdout, *nodeF, *ranksF, *plansF, *quick, *seedF); err != nil {
			fatalf("tune: %v", err)
		}
		return
	}
	if *verifyF {
		if err := runPlanVerify(os.Stdout, *nodeF, *ranksF, *plansF, *quick); err != nil {
			fatalf("plan-verify: %v", err)
		}
		return
	}

	if *engine != "" {
		kind, err := sim.ParseEngine(*engine)
		if err != nil {
			fatalf("%v", err)
		}
		bench.SetEngine(kind)
	}
	if *scaleF {
		if err := bench.ScaleGate(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *chaosF {
		if bad := chaos.Report(os.Stdout, chaos.Sweep(chaos.DefaultCases())); bad > 0 {
			os.Exit(1)
		}
		return
	}
	if *recoverF {
		if bad := chaos.ReportRecovery(os.Stdout, chaos.SweepRecover(chaos.DefaultCases())); bad > 0 {
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		desc := bench.Describe()
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-14s %s\n", id, desc[id])
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("csv: %v", err)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		fig, err := bench.Run(id, *quick)
		if err != nil {
			fatalf("%v", err)
		}
		fig.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, fig); err != nil {
				fatalf("csv: %v", err)
			}
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
	}
}

// writeCSV renders one experiment's figure to <dir>/<id>.csv.
func writeCSV(dir, id string, fig *bench.Figure) error {
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fig.FprintCSV(f)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "yhcclbench: "+format+"\n", args...)
	os.Exit(1)
}
