// Command yhcclbench regenerates the paper's tables and figures from the
// simulated machines.
//
// Usage:
//
//	yhcclbench -list                 # show all experiment ids
//	yhcclbench -exp fig9a            # regenerate one experiment
//	yhcclbench -exp all              # regenerate everything (slow)
//	yhcclbench -exp fig11a -quick    # 3-point sweep instead of 13
package main

import (
	"flag"
	"fmt"
	"os"

	"yhccl/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		quick = flag.Bool("quick", false, "trimmed sweeps for smoke runs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list || *exp == "" {
		desc := bench.Describe()
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			fmt.Printf("  %-14s %s\n", id, desc[id])
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		fig, err := bench.Run(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yhcclbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fig.FprintCSV(os.Stdout)
		} else {
			fig.Fprint(os.Stdout)
		}
	}
}
