// Command simbench measures the simulator's own performance — the
// engine's control-transfer primitives, the residency tracker's hot
// paths and the wall-clock time of a full quick figure sweep — and
// emits the results as JSON suitable for checking in as BENCH_sim.json.
//
// Usage:
//
//	go run ./cmd/simbench            # full run, JSON on stdout
//	go run ./cmd/simbench -skip-fig  # micro-benchmarks only
//	go run ./cmd/simbench -skip-fig -compare BENCH_sim.json
//	                                 # re-run and fail on >15% regression
//	go run ./cmd/simbench -engine-compare
//	                                 # run the full engine parity matrix and
//	                                 # fail on any makespan divergence
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"yhccl/internal/bench"
	"yhccl/internal/cluster"
	"yhccl/internal/memmodel"
	"yhccl/internal/plan"
	"yhccl/internal/serve"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
	"yhccl/internal/tune"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	GoVersion          string            `json:"go_version"`
	GOOS               string            `json:"goos"`
	GOARCH             string            `json:"goarch"`
	NumCPU             int               `json:"num_cpu"`
	EngineMode         string            `json:"engine_mode"`
	EngineParityCases  int               `json:"engine_parity_cases,omitempty"`
	Benchmarks         map[string]result `json:"benchmarks"`
	PlanCacheEntries   int               `json:"plan_cache_entries,omitempty"`
	Fig11aQuickSeconds float64           `json:"fig11a_quick_wall_seconds,omitempty"`
}

func run(name string, f func(b *testing.B), out map[string]result) {
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out[name] = result{
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op %14.0f ops/sec\n", name, ns, 1e9/ns)
}

func engineYield(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(2)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		p.Advance(1)
		for i := 0; i < n; i++ {
			p.Advance(2)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineYieldFast(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("solo", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineFlagWait(b *testing.B) {
	e := sim.NewEngine()
	fa, fb := sim.NewFlag("a"), sim.NewFlag("b")
	n := b.N
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(0.001)
			p.Incr(fa)
			p.Wait(fb, uint64(i+1), 0.001)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Wait(fa, uint64(i+1), 0.001)
			p.Advance(0.001)
			p.Incr(fb)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineBarrier(b *testing.B) {
	const parties = 8
	e := sim.NewEngine()
	bar := sim.NewBarrier("bench", parties)
	n := b.N
	for i := 0; i < parties; i++ {
		i := i
		e.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(float64(i+1) * 0.001)
				p.Arrive(bar, 0.001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineMixed(b *testing.B) {
	const procs = 16
	e := sim.NewEngine()
	f := sim.NewFlag("f")
	bar := sim.NewBarrier("bar", procs)
	rng := rand.New(rand.NewSource(42))
	durs := make([]float64, 1024)
	for i := range durs {
		durs[i] = rng.Float64() * 0.01
	}
	n := b.N
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(durs[(i*131+j)%len(durs)])
				if i == 0 {
					p.Set(f, uint64(j+1))
				} else {
					p.Wait(f, uint64(j+1), 0.0001)
				}
				p.Arrive(bar, 0.0001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// residencyInsert drives the tracker's insert path through Model.Warm
// with a working set 4x the cache capacity, so steady state evicts on
// every insert.
func residencyInsert(b *testing.B) {
	node := topo.NodeA()
	m := memmodel.New(node, []int{0})
	pages := 4 * node.L3PerSocket / 4096
	buf := m.NewBuffer("bench", memmodel.Private, 0, pages*4096, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i) % pages * 4096
		m.Warm(0, buf, off, 4096)
	}
}

// residencyLookup measures Model.Load of fully-resident data on a
// running sim proc — the per-chunk hot path of every collective.
func residencyLookup(b *testing.B) {
	node := topo.NodeA()
	m := memmodel.New(node, []int{0})
	const span = 1 << 20
	buf := m.NewBuffer("bench", memmodel.Private, 0, span, false)
	m.Warm(0, buf, 0, span)
	e := sim.NewEngine()
	n := b.N
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i%256) * 4096
			m.Load(p, 0, buf, off, 512)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// eventPostPop drives the event calendar's push/pop hot path at a rolling
// depth of 1024 entries — cluster-typical (one in-flight event per rank
// wavefront).
func eventPostPop(b *testing.B) {
	e := sim.NewEventEngine()
	var now sim.Tick
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Post(now+sim.Tick(i%97), int32(i&1023), 0)
		if e.Pending() >= 1024 {
			e.Run(func(t sim.Tick, _, _ int32) { now = t })
		}
	}
}

// planLookup measures the per-call plan-table dispatch: one bucket index
// plus an edge clamp. This is the hot path every Tuned* collective pays, so
// it must stay O(1) with zero allocations (AllocsPerOp is asserted in CI
// via the checked-in BENCH_sim.json showing 0).
func planLookup(b *testing.B) {
	var entries []plan.Plan
	for _, c := range plan.Colls() {
		for bkt := plan.Bucket(64 << 10); bkt <= plan.Bucket(256<<20); bkt++ {
			entries = append(entries, plan.Plan{
				Collective: c.String(), Bucket: bkt, SizeBytes: plan.BucketSize(bkt),
				Params: plan.Params{Family: "socket-ma"},
			})
		}
	}
	tab, err := plan.NewTable(entries)
	if err != nil {
		b.Fatal(err)
	}
	sizes := [8]int64{4 << 10, 64 << 10, 640 << 10, 2 << 20, 13 << 20, 64 << 20, 256 << 20, 1 << 30}
	b.ReportAllocs()
	b.ResetTimer()
	var sink *plan.Plan
	for i := 0; i < b.N; i++ {
		sink = tab.Lookup(plan.Allreduce, sizes[i&7])
	}
	_ = sink
}

// planSynthesize measures one cold quick-budget tuner run at a small rank
// count — the offline cost a `make tune -quick` pays per machine.
func planSynthesize(count *int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache, err := tune.Tune(tune.Config{Node: topo.NodeA(), Ranks: 4, Quick: true, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			*count = len(cache.Plans)
		}
	}
}

// serveAdmission measures the pure scheduling cost of the multi-tenant
// admission/placement engine — a 256-job saturating stream with an oracle
// supplying service times, so no simulation runs. One op = one full
// stream (admission, placement, fluid rate updates, completion).
func serveAdmission(b *testing.B) {
	node := topo.NodeA()
	oracle := func(spec serve.JobSpec, perSocket, ext []int) float64 {
		s := 1e-3 * float64(spec.Ranks) * float64(spec.Calls)
		for sk := range perSocket {
			if perSocket[sk] > 0 && ext[sk] > 0 {
				s *= 1 + 0.1*float64(ext[sk])
			}
		}
		return s
	}
	arrivals, err := serve.GenStream(serve.StreamConfig{
		Seed: 42, Mix: serve.DefaultMix(), Jobs: 256, Rate: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.NewScheduler(node, serve.PlaceAuto)
		s.SetServiceOracle(oracle)
		if _, err := s.Run(arrivals); err != nil {
			b.Fatal(err)
		}
	}
}

// serveMixedLoad measures one cold sim-backed load point of the default
// mix at a saturating rate — the cost `make serve` pays per swept rate,
// including the memoized service-time measurements.
func serveMixedLoad(b *testing.B) {
	node := topo.NodeA()
	cfg := serve.StreamConfig{Seed: 42, Mix: serve.DefaultMix(), Jobs: 20, Rate: 1600}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lp, err := serve.RunLoad(node, serve.PlaceAuto, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if lp.Jobs != cfg.Jobs {
			b.Fatalf("completed %d of %d jobs", lp.Jobs, cfg.Jobs)
		}
	}
}

// clusterCrossoverProgram is the shared compiled schedule both program
// benchmarks interpret: the fig16b config (16 nodes x 64 ranks, 2 MB), the
// apples-to-apples crossover between engines.
func clusterCrossoverProgram() sim.Program {
	c := cluster.New(topo.NodeA(), 16, 64, cluster.IB100())
	prog, err := c.CompileAllreduce(cluster.YHCCLHierarchical, (2<<20)/8, cluster.ScheduleOptions{})
	if err != nil {
		panic(err)
	}
	return prog
}

func programEngine(kind sim.EngineKind) func(b *testing.B) {
	return func(b *testing.B) {
		prog := clusterCrossoverProgram()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunProgram(kind, prog); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// clusterFaultOverhead measures the healthy armed path: the crossover
// program run through the cluster fault layer with no plan armed. The
// figure of merit is the delta against program_event — arming must cost
// ~nothing when nothing is injected, or every healthy sweep pays for it.
func clusterFaultOverhead(b *testing.B) {
	prog := clusterCrossoverProgram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunArmed(prog, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// clusterRecompile measures the crash-recovery compile: a fresh
// hierarchical-allreduce schedule over the 63 survivors of a 64-node
// cluster — the setup cost every recovered-by-recompile attempt pays
// before it can re-run.
func clusterRecompile(b *testing.B) {
	node := topo.NodeA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.New(node, 63, 64, cluster.IB100())
		if _, err := c.CompileAllreduce(cluster.YHCCLHierarchical, 1<<16, cluster.ScheduleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// clusterRejoin measures the rejoin compile: the fresh full-membership
// hierarchical-allreduce schedule a healed node's re-entry pays for — the
// mirror of cluster_recompile one epoch later, back at all 64 nodes.
func clusterRejoin(b *testing.B) {
	node := topo.NodeA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.New(node, 64, 64, cluster.IB100())
		c.Epoch = 2
		if _, err := c.CompileAllreduce(cluster.YHCCLHierarchical, 1<<16, cluster.ScheduleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// epochCheckOverhead measures the healthy path of an epoch-stamped world:
// the crossover program through the armed runner on a cluster two
// membership epochs in. Epoch checking is an integer compare on resource
// acquisition — the figure of merit is the delta against program_event /
// cluster_fault_overhead, which must stay ~zero.
func epochCheckOverhead(b *testing.B) {
	c := cluster.New(topo.NodeA(), 16, 64, cluster.IB100())
	c.Epoch = 2
	prog, err := c.CompileAllreduce(cluster.YHCCLHierarchical, (2<<20)/8, cluster.ScheduleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunArmed(prog, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// engineCompare runs both engines over the shared parity matrix and fails
// on any makespan divergence — the gate, invocable from CI.
func engineCompare(verbose bool) (int, error) {
	results, err := cluster.VerifyParity(cluster.ParityCases())
	if err != nil {
		return 0, err
	}
	if verbose {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "parity %-44s %14d ticks  %8d events\n", r.Name, r.Makespan, r.Events)
		}
	}
	return len(results), nil
}

func main() {
	os.Exit(realMain())
}

// realMain carries main's body so deferred profile writers run before the
// process exits with a failure code.
func realMain() int {
	var (
		skipFig   = flag.Bool("skip-fig", false, "skip the fig11a quick wall-clock run")
		compare   = flag.String("compare", "", "baseline JSON to diff against; exit non-zero on regression")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression for -compare")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		engine    = flag.String("engine", "event", "engine recorded as the report's mode: coroutine or event")
		engCmp    = flag.Bool("engine-compare", false, "run the engine parity matrix (both engines, all shared configs) and exit; nonzero on divergence")
	)
	flag.Parse()

	engineKind, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 1
	}

	if *engCmp {
		n, err := engineCompare(true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simbench: %d configs, event == coroutine makespans on all\n", n)
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
	}()

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		EngineMode: engineKind.String(),
		Benchmarks: map[string]result{},
	}
	run("engine_yield", engineYield, rep.Benchmarks)
	run("engine_yield_fast", engineYieldFast, rep.Benchmarks)
	run("engine_flag_wait", engineFlagWait, rep.Benchmarks)
	run("engine_barrier", engineBarrier, rep.Benchmarks)
	run("engine_mixed", engineMixed, rep.Benchmarks)
	run("event_post_pop", eventPostPop, rep.Benchmarks)
	run("program_event", programEngine(sim.EngineEvent), rep.Benchmarks)
	run("program_coroutine", programEngine(sim.EngineCoroutine), rep.Benchmarks)
	run("residency_insert", residencyInsert, rep.Benchmarks)
	run("residency_lookup", residencyLookup, rep.Benchmarks)
	run("plan_lookup", planLookup, rep.Benchmarks)
	run("plan_synthesize", planSynthesize(&rep.PlanCacheEntries), rep.Benchmarks)
	run("serve_admission", serveAdmission, rep.Benchmarks)
	run("serve_mixed_load", serveMixedLoad, rep.Benchmarks)
	run("cluster_fault_overhead", clusterFaultOverhead, rep.Benchmarks)
	run("cluster_recompile", clusterRecompile, rep.Benchmarks)
	run("cluster_rejoin", clusterRejoin, rep.Benchmarks)
	run("epoch_check_overhead", epochCheckOverhead, rep.Benchmarks)

	fmt.Fprintf(os.Stderr, "running engine parity matrix...\n")
	nParity, err := engineCompare(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return 1
	}
	rep.EngineParityCases = nParity

	if !*skipFig {
		fmt.Fprintf(os.Stderr, "running fig11a quick sweep...\n")
		start := time.Now()
		if _, err := bench.Run("fig11a", true); err != nil {
			fmt.Fprintf(os.Stderr, "fig11a: %v\n", err)
			return 1
		}
		rep.Fig11aQuickSeconds = time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "fig11a quick: %.1f s\n", rep.Fig11aQuickSeconds)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(string(out))

	if *compare != "" {
		if err := compareBaseline(*compare, *tolerance, rep); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "simbench: within %.0f%% of %s\n", *tolerance*100, *compare)
	}
	return 0
}

// compareBaseline diffs the fresh measurements against a checked-in
// baseline JSON and reports an error when any shared micro-benchmark (or
// the fig11a wall clock, when both runs measured it) regressed by more than
// the tolerance fraction. Benchmarks present on only one side are reported
// but do not fail the comparison, so the baseline file and the benchmark
// set can evolve independently.
func compareBaseline(path string, tolerance float64, fresh report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var regressions []string
	for name, b := range base.Benchmarks {
		f, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "compare: %s only in baseline, skipped\n", name)
			continue
		}
		ratio := f.NsPerOp/b.NsPerOp - 1
		fmt.Fprintf(os.Stderr, "compare: %-24s %10.1f -> %10.1f ns/op (%+.1f%%)\n",
			name, b.NsPerOp, f.NsPerOp, ratio*100)
		if ratio > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s %.1f%% slower", name, ratio*100))
		}
	}
	if base.Fig11aQuickSeconds > 0 && fresh.Fig11aQuickSeconds > 0 {
		ratio := fresh.Fig11aQuickSeconds/base.Fig11aQuickSeconds - 1
		fmt.Fprintf(os.Stderr, "compare: %-24s %10.1f -> %10.1f s      (%+.1f%%)\n",
			"fig11a_quick", base.Fig11aQuickSeconds, fresh.Fig11aQuickSeconds, ratio*100)
		if ratio > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("fig11a_quick %.1f%% slower", ratio*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regression beyond %.0f%%: %s",
			tolerance*100, strings.Join(regressions, "; "))
	}
	return nil
}
