// Command simbench measures the simulator's own performance — the
// engine's control-transfer primitives, the residency tracker's hot
// paths and the wall-clock time of a full quick figure sweep — and
// emits the results as JSON suitable for checking in as BENCH_sim.json.
//
// Usage:
//
//	go run ./cmd/simbench            # full run, JSON on stdout
//	go run ./cmd/simbench -skip-fig  # micro-benchmarks only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"yhccl/internal/bench"
	"yhccl/internal/memmodel"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

type result struct {
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	BytesPerOp int64   `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type report struct {
	GoVersion          string            `json:"go_version"`
	GOOS               string            `json:"goos"`
	GOARCH             string            `json:"goarch"`
	NumCPU             int               `json:"num_cpu"`
	Benchmarks         map[string]result `json:"benchmarks"`
	Fig11aQuickSeconds float64           `json:"fig11a_quick_wall_seconds,omitempty"`
}

func run(name string, f func(b *testing.B), out map[string]result) {
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out[name] = result{
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op %14.0f ops/sec\n", name, ns, 1e9/ns)
}

func engineYield(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(2)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		p.Advance(1)
		for i := 0; i < n; i++ {
			p.Advance(2)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineYieldFast(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("solo", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineFlagWait(b *testing.B) {
	e := sim.NewEngine()
	fa, fb := sim.NewFlag("a"), sim.NewFlag("b")
	n := b.N
	e.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Advance(0.001)
			p.Incr(fa)
			p.Wait(fb, uint64(i+1), 0.001)
		}
	})
	e.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Wait(fa, uint64(i+1), 0.001)
			p.Advance(0.001)
			p.Incr(fb)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineBarrier(b *testing.B) {
	const parties = 8
	e := sim.NewEngine()
	bar := sim.NewBarrier("bench", parties)
	n := b.N
	for i := 0; i < parties; i++ {
		i := i
		e.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(float64(i+1) * 0.001)
				p.Arrive(bar, 0.001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func engineMixed(b *testing.B) {
	const procs = 16
	e := sim.NewEngine()
	f := sim.NewFlag("f")
	bar := sim.NewBarrier("bar", procs)
	rng := rand.New(rand.NewSource(42))
	durs := make([]float64, 1024)
	for i := range durs {
		durs[i] = rng.Float64() * 0.01
	}
	n := b.N
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("p", func(p *sim.Proc) {
			for j := 0; j < n; j++ {
				p.Advance(durs[(i*131+j)%len(durs)])
				if i == 0 {
					p.Set(f, uint64(j+1))
				} else {
					p.Wait(f, uint64(j+1), 0.0001)
				}
				p.Arrive(bar, 0.0001)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// residencyInsert drives the tracker's insert path through Model.Warm
// with a working set 4x the cache capacity, so steady state evicts on
// every insert.
func residencyInsert(b *testing.B) {
	node := topo.NodeA()
	m := memmodel.New(node, []int{0})
	pages := 4 * node.L3PerSocket / 4096
	buf := m.NewBuffer("bench", memmodel.Private, 0, pages*4096, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i) % pages * 4096
		m.Warm(0, buf, off, 4096)
	}
}

// residencyLookup measures Model.Load of fully-resident data on a
// running sim proc — the per-chunk hot path of every collective.
func residencyLookup(b *testing.B) {
	node := topo.NodeA()
	m := memmodel.New(node, []int{0})
	const span = 1 << 20
	buf := m.NewBuffer("bench", memmodel.Private, 0, span, false)
	m.Warm(0, buf, 0, span)
	e := sim.NewEngine()
	n := b.N
	e.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i%256) * 4096
			m.Load(p, 0, buf, off, 512)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func main() {
	skipFig := flag.Bool("skip-fig", false, "skip the fig11a quick wall-clock run")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: map[string]result{},
	}
	run("engine_yield", engineYield, rep.Benchmarks)
	run("engine_yield_fast", engineYieldFast, rep.Benchmarks)
	run("engine_flag_wait", engineFlagWait, rep.Benchmarks)
	run("engine_barrier", engineBarrier, rep.Benchmarks)
	run("engine_mixed", engineMixed, rep.Benchmarks)
	run("residency_insert", residencyInsert, rep.Benchmarks)
	run("residency_lookup", residencyLookup, rep.Benchmarks)

	if !*skipFig {
		fmt.Fprintf(os.Stderr, "running fig11a quick sweep...\n")
		start := time.Now()
		if _, err := bench.Run("fig11a", true); err != nil {
			fmt.Fprintf(os.Stderr, "fig11a: %v\n", err)
			os.Exit(1)
		}
		rep.Fig11aQuickSeconds = time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "fig11a quick: %.1f s\n", rep.Fig11aQuickSeconds)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
