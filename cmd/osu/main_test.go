package main

import (
	"strings"
	"testing"
)

func TestParseStraggler(t *testing.T) {
	const np = 8
	cases := []struct {
		name    string
		spec    string
		wantErr string // substring of the error; "" means the spec must parse
		rank    int
		factor  float64
	}{
		{name: "empty means no plan", spec: ""},
		{name: "valid", spec: "3:8", rank: 3, factor: 8},
		{name: "valid fractional factor", spec: "0:1.5", rank: 0, factor: 1.5},
		{name: "valid last rank", spec: "7:2", rank: 7, factor: 2},
		{name: "missing colon", spec: "3", wantErr: "want rank:factor"},
		{name: "non-numeric rank", spec: "x:8", wantErr: `bad -straggler rank "x"`},
		{name: "non-numeric factor", spec: "3:y", wantErr: `bad -straggler factor "y"`},
		{name: "negative rank", spec: "-1:8", wantErr: "outside 0..7"},
		{name: "rank == np", spec: "8:8", wantErr: "outside 0..7"},
		{name: "rank way out of range", spec: "100:8", wantErr: "outside 0..7"},
		{name: "zero factor", spec: "3:0", wantErr: "must be positive and finite"},
		{name: "negative factor", spec: "3:-2", wantErr: "must be positive and finite"},
		{name: "NaN factor", spec: "3:NaN", wantErr: "must be positive and finite"},
		{name: "Inf factor", spec: "3:+Inf", wantErr: "must be positive and finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := parseStraggler(tc.spec, np)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseStraggler(%q, %d) = %+v, want error containing %q",
						tc.spec, np, pl, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseStraggler(%q, %d): %v", tc.spec, np, err)
			}
			if tc.spec == "" {
				if pl != nil {
					t.Fatalf("empty spec produced plan %+v", pl)
				}
				return
			}
			if len(pl.Stragglers) != 1 {
				t.Fatalf("plan has %d stragglers, want 1", len(pl.Stragglers))
			}
			s := pl.Stragglers[0]
			if s.Rank != tc.rank || s.Factor != tc.factor {
				t.Errorf("got straggler %d:%v, want %d:%v", s.Rank, s.Factor, tc.rank, tc.factor)
			}
		})
	}
}

func TestParseStragglerRespectsNp(t *testing.T) {
	// The same spec is valid or not depending on np: rank 7 exists with
	// np=8 but not with np=4.
	if _, err := parseStraggler("7:8", 8); err != nil {
		t.Errorf("rank 7 rejected with np=8: %v", err)
	}
	if _, err := parseStraggler("7:8", 4); err == nil {
		t.Error("rank 7 accepted with np=4")
	}
}
