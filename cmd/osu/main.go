// Command osu is an OSU-micro-benchmark-style driver for the simulated
// collectives, mirroring the artifact's verification flow
// ("mpiexec -n 64 ./osu_allreduce -c -m 65536:268435456").
//
// Usage:
//
//	osu -coll allreduce -np 64 -node NodeA -m 65536:268435456
//	osu -coll reduce-scatter -alg dpml -np 48 -node NodeB -c
//
// -c additionally runs a data-carrying verification pass at a reduced
// size, like the OSU -c flag.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"yhccl/internal/coll"
	"yhccl/internal/fault"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/sim"
	"yhccl/internal/topo"
)

func main() {
	var (
		collective = flag.String("coll", "allreduce", "collective: allreduce, reduce-scatter, reduce, bcast, allgather, gather, scatter, alltoall, scan")
		alg        = flag.String("alg", "yhccl", "algorithm name (see -algs)")
		np         = flag.Int("np", 64, "number of ranks")
		nodeName   = flag.String("node", "NodeA", "node preset: NodeA, NodeB, NodeC")
		mrange     = flag.String("m", "65536:268435456", "message byte range min:max (doubling)")
		check      = flag.Bool("c", false, "run a data verification pass first")
		stats      = flag.Bool("stats", false, "also print DAV and DRAM-traffic columns")
		traceFile  = flag.String("trace", "", "write a chrome://tracing JSON of the largest size's run")
		algsFlag   = flag.Bool("algs", false, "list algorithms for -coll and exit")
		straggler  = flag.String("straggler", "", "inject a deterministic straggler into the timed runs, as rank:factor (e.g. 3:8)")
	)
	flag.Parse()

	if *algsFlag {
		fmt.Println(strings.Join(algNames(*collective), " "))
		return
	}

	node, err := topo.Preset(*nodeName)
	if err != nil {
		fatal(err)
	}
	lo, hi, err := parseRange(*mrange)
	if err != nil {
		fatal(err)
	}
	plan, err := parseStraggler(*straggler, *np)
	if err != nil {
		fatal(err)
	}

	if *check {
		if err := verify(node, *np, *collective, *alg); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Println("# verification passed")
	}

	fmt.Printf("# OSU-style %s, %s, np=%d, algorithm=%s (simulated time)\n",
		*collective, node.Name, *np, *alg)
	if plan != nil {
		fmt.Printf("# %v\n", plan)
	}
	if *stats {
		fmt.Printf("%-12s %14s %12s %12s %10s\n", "# Size", "Avg Latency(us)", "DAV(MB)", "DRAM(MB)", "syncs")
	} else {
		fmt.Printf("%-12s %14s\n", "# Size", "Avg Latency(us)")
	}
	for s := lo; s <= hi; s *= 2 {
		trace := *traceFile != "" && s*2 > hi // only the largest size
		t, counters, tr, err := measure(node, *np, *collective, *alg, s, trace, plan)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Printf("%-12d %14.2f %12d %12d %10d\n",
				s, t*1e6, counters.DAV()>>20, counters.DRAMTraffic>>20, counters.SyncCount)
		} else {
			fmt.Printf("%-12d %14.2f\n", s, t*1e6)
		}
		if tr != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			if err := tr.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("# trace (%d events) written to %s\n", tr.Len(), *traceFile)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osu:", err)
	os.Exit(1)
}

func parseRange(s string) (int64, int64, error) {
	parts := strings.SplitN(s, ":", 2)
	lo, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	hi := lo
	if len(parts) == 2 {
		hi, err = strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q", s)
		}
	}
	if lo < 8 || hi < lo {
		return 0, 0, fmt.Errorf("range %q must satisfy 8 <= min <= max", s)
	}
	return lo, hi, nil
}

func algNames(collective string) []string {
	switch collective {
	case "allreduce":
		return coll.Names(coll.AllreduceAlgos)
	case "reduce-scatter":
		return coll.Names(coll.ReduceScatterAlgos)
	case "reduce":
		return coll.Names(coll.ReduceAlgos)
	case "bcast":
		return coll.Names(coll.BcastAlgos)
	case "allgather":
		return coll.Names(coll.AllgatherAlgos)
	case "gather":
		return coll.Names(coll.GatherAlgos)
	case "scatter":
		return coll.Names(coll.ScatterAlgos)
	case "alltoall":
		return coll.Names(coll.AlltoallAlgos)
	case "scan":
		return coll.Names(coll.ScanAlgos)
	}
	return nil
}

// parseStraggler turns a "rank:factor" spec into a one-straggler fault plan
// (nil when the spec is empty). The rank must name one of the np ranks and
// the factor must be a positive finite slowdown — a spec that falls outside
// those bounds is rejected here rather than silently arming nothing.
func parseStraggler(s string, np int) (*fault.Plan, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -straggler %q, want rank:factor", s)
	}
	rank, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("bad -straggler rank %q", parts[0])
	}
	if rank < 0 || rank >= np {
		return nil, fmt.Errorf("-straggler rank %d outside 0..%d (np=%d)", rank, np-1, np)
	}
	factor, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("bad -straggler factor %q", parts[1])
	}
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return nil, fmt.Errorf("-straggler factor %v must be positive and finite", factor)
	}
	return &fault.Plan{
		Name:       "cli-straggler",
		Stragglers: []fault.Straggler{{Rank: rank, Factor: factor}},
	}, nil
}

// measure returns steady-state simulated seconds and the measured
// iteration's counters at message bytes s, optionally tracing it.
func measure(node *topo.Node, np int, collective, alg string, s int64, trace bool, plan *fault.Plan) (float64, memmodel.Counters, *sim.Tracer, error) {
	m := mpi.NewMachine(node, np, false)
	if err := m.SetFaultPlan(plan); err != nil {
		return 0, memmodel.Counters{}, nil, err
	}
	body, err := makeBody(m, collective, alg, s)
	if err != nil {
		return 0, memmodel.Counters{}, nil, err
	}
	m.MustRun(body) // warm-up
	var tr *sim.Tracer
	if trace {
		tr = sim.NewTracer()
		m.Model.SetTracer(tr)
	}
	before := m.Model.Counters()
	t := m.MustRun(body)
	m.Model.SetTracer(nil)
	return t, m.Model.Counters().Sub(before), tr, nil
}

func makeBody(m *mpi.Machine, collective, alg string, s int64) (func(r *mpi.Rank), error) {
	n := s / memmodel.ElemSize
	if n < 1 {
		n = 1
	}
	p := int64(m.Size())
	switch collective {
	case "allreduce":
		f, err := coll.Lookup(coll.AllreduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n)
			rb := r.PersistentBuffer("osu/rb", n)
			r.Warm(sb, 0, n)
			r.Warm(rb, 0, n)
			f(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
		}, nil
	case "reduce-scatter":
		f, err := coll.Lookup(coll.ReduceScatterAlgos, alg)
		if err != nil {
			return nil, err
		}
		bn := n / p
		if bn < 1 {
			bn = 1
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", bn*p)
			rb := r.PersistentBuffer("osu/rb", bn)
			r.Warm(sb, 0, bn*p)
			f(r, r.World(), sb, rb, bn, mpi.Sum, coll.Options{})
		}, nil
	case "reduce":
		f, err := coll.Lookup(coll.ReduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n)
			rb := r.PersistentBuffer("osu/rb", n)
			r.Warm(sb, 0, n)
			f(r, r.World(), sb, rb, n, mpi.Sum, 0, coll.Options{})
		}, nil
	case "bcast":
		f, err := coll.Lookup(coll.BcastAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			buf := r.PersistentBuffer("osu/buf", n)
			r.Warm(buf, 0, n)
			f(r, r.World(), buf, n, 0, coll.Options{})
		}, nil
	case "allgather":
		f, err := coll.Lookup(coll.AllgatherAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n)
			rb := r.PersistentBuffer("osu/rb", n*p)
			r.Warm(sb, 0, n)
			f(r, r.World(), sb, rb, n, coll.Options{})
		}, nil
	case "gather":
		f, err := coll.Lookup(coll.GatherAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n)
			rb := r.PersistentBuffer("osu/rb", n*p)
			r.Warm(sb, 0, n)
			f(r, r.World(), sb, rb, n, 0, coll.Options{})
		}, nil
	case "scatter":
		f, err := coll.Lookup(coll.ScatterAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n*p)
			rb := r.PersistentBuffer("osu/rb", n)
			if r.ID() == 0 {
				r.Warm(sb, 0, n*p)
			}
			f(r, r.World(), sb, rb, n, 0, coll.Options{})
		}, nil
	case "alltoall":
		f, err := coll.Lookup(coll.AlltoallAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n*p)
			rb := r.PersistentBuffer("osu/rb", n*p)
			r.Warm(sb, 0, n*p)
			f(r, r.World(), sb, rb, n, coll.Options{})
		}, nil
	case "scan":
		f, err := coll.Lookup(coll.ScanAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.PersistentBuffer("osu/sb", n)
			rb := r.PersistentBuffer("osu/rb", n)
			r.Warm(sb, 0, n)
			f(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
		}, nil
	}
	return nil, fmt.Errorf("unknown collective %q", collective)
}

// verify runs the collective with real data at a small size and checks the
// result element-wise.
func verify(node *topo.Node, np int, collective, alg string) error {
	const n = 1024
	m := mpi.NewMachine(node, np, true)
	var failure error
	p := np
	expectSum := func(i int64) float64 {
		return float64(p)*float64(i) + float64(p*(p-1))/2
	}
	body, err := makeVerifyBody(m, collective, alg, n, expectSum, &failure)
	if err != nil {
		return err
	}
	m.MustRun(body)
	return failure
}

func makeVerifyBody(m *mpi.Machine, collective, alg string, n int64,
	expectSum func(i int64) float64, failure *error) (func(r *mpi.Rank), error) {
	p := int64(m.Size())
	fail := func(format string, args ...interface{}) {
		if *failure == nil {
			*failure = fmt.Errorf(format, args...)
		}
	}
	switch collective {
	case "allreduce":
		f, err := coll.Lookup(coll.AllreduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n)
			rb := r.NewBuffer("v/rb", n)
			r.FillPattern(sb, float64(r.ID()))
			f(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
			for i := int64(0); i < n; i += 17 {
				if got := rb.Slice(i, 1)[0]; got != expectSum(i) {
					fail("rank %d rb[%d] = %v, want %v", r.ID(), i, got, expectSum(i))
					return
				}
			}
		}, nil
	case "reduce-scatter":
		f, err := coll.Lookup(coll.ReduceScatterAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n*p)
			rb := r.NewBuffer("v/rb", n)
			r.FillPattern(sb, float64(r.ID()))
			f(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
			for i := int64(0); i < n; i += 17 {
				want := expectSum(int64(r.ID())*n + i)
				if got := rb.Slice(i, 1)[0]; got != want {
					fail("rank %d rb[%d] = %v, want %v", r.ID(), i, got, want)
					return
				}
			}
		}, nil
	case "reduce":
		f, err := coll.Lookup(coll.ReduceAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n)
			rb := r.NewBuffer("v/rb", n)
			r.FillPattern(sb, float64(r.ID()))
			f(r, r.World(), sb, rb, n, mpi.Sum, 0, coll.Options{})
			if r.ID() == 0 {
				for i := int64(0); i < n; i += 17 {
					if got := rb.Slice(i, 1)[0]; got != expectSum(i) {
						fail("root rb[%d] = %v, want %v", i, got, expectSum(i))
						return
					}
				}
			}
		}, nil
	case "bcast":
		f, err := coll.Lookup(coll.BcastAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			buf := r.NewBuffer("v/buf", n)
			if r.ID() == 0 {
				r.FillPattern(buf, 777)
			}
			f(r, r.World(), buf, n, 0, coll.Options{})
			for i := int64(0); i < n; i += 17 {
				if got := buf.Slice(i, 1)[0]; got != 777+float64(i) {
					fail("rank %d buf[%d] = %v", r.ID(), i, got)
					return
				}
			}
		}, nil
	case "allgather":
		f, err := coll.Lookup(coll.AllgatherAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n)
			rb := r.NewBuffer("v/rb", n*p)
			r.FillPattern(sb, float64(r.ID()*100000))
			f(r, r.World(), sb, rb, n, coll.Options{})
			for b := int64(0); b < p; b++ {
				for i := int64(0); i < n; i += 111 {
					want := float64(b*100000) + float64(i)
					if got := rb.Slice(b*n+i, 1)[0]; got != want {
						fail("rank %d rb[%d][%d] = %v, want %v", r.ID(), b, i, got, want)
						return
					}
				}
			}
		}, nil
	case "gather":
		f, err := coll.Lookup(coll.GatherAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n)
			rb := r.NewBuffer("v/rb", n*p)
			r.FillPattern(sb, float64(r.ID()*100000))
			f(r, r.World(), sb, rb, n, 0, coll.Options{})
			if r.ID() == 0 {
				for b := int64(0); b < p; b++ {
					if got := rb.Slice(b*n, 1)[0]; got != float64(b*100000) {
						fail("gather rb[%d] = %v", b, got)
						return
					}
				}
			}
		}, nil
	case "scatter":
		f, err := coll.Lookup(coll.ScatterAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n*p)
			rb := r.NewBuffer("v/rb", n)
			if r.ID() == 0 {
				r.FillPattern(sb, 0)
			}
			f(r, r.World(), sb, rb, n, 0, coll.Options{})
			me := int64(r.ID())
			if got := rb.Slice(0, 1)[0]; got != float64(me*n) {
				fail("scatter rank %d rb[0] = %v, want %v", r.ID(), got, me*n)
			}
		}, nil
	case "scan":
		f, err := coll.Lookup(coll.ScanAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n)
			rb := r.NewBuffer("v/rb", n)
			r.FillPattern(sb, float64(r.ID()))
			f(r, r.World(), sb, rb, n, mpi.Sum, coll.Options{})
			me := r.ID()
			want := float64(me+1)*5 + float64(me*(me+1))/2
			if got := rb.Slice(5, 1)[0]; got != want {
				fail("scan rank %d rb[5] = %v, want %v", me, got, want)
			}
		}, nil
	case "alltoall":
		f, err := coll.Lookup(coll.AlltoallAlgos, alg)
		if err != nil {
			return nil, err
		}
		return func(r *mpi.Rank) {
			sb := r.NewBuffer("v/sb", n*p)
			rb := r.NewBuffer("v/rb", n*p)
			data := sb.Slice(0, n*p)
			for j := int64(0); j < p; j++ {
				for i := int64(0); i < n; i++ {
					data[j*n+i] = float64(r.ID())*1e6 + float64(j)*1e3
				}
			}
			f(r, r.World(), sb, rb, n, coll.Options{})
			for j := int64(0); j < p; j++ {
				want := float64(j)*1e6 + float64(r.ID())*1e3
				if got := rb.Slice(j*n, 1)[0]; got != want {
					fail("alltoall rank %d rb[%d] = %v, want %v", r.ID(), j, got, want)
					return
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("unknown collective %q", collective)
}
