// Tuning: the persistent tuned-plan cache in action — load the synthesized
// plans for NodeA p=64 (committed under plans/, regenerate with `make
// tune`), print the tuner-derived small/large algorithm switch against the
// paper's hand-tuned 256 KB threshold, and replay a sweep comparing each
// plan's predicted time against a fresh measurement through the tuned
// dispatch. Then the adaptive-copy decision surface (Algorithm 1): for
// each copy policy, sweep the message size through the W > C switch point
// and show where the NT stores start paying off.
package main

import (
	"fmt"

	"yhccl"
	"yhccl/internal/bench"
	"yhccl/internal/coll"
	"yhccl/internal/plan"
)

func main() {
	node := yhccl.NodeA()
	const p = 64

	// 1. The tuned-plan cache: load-once, O(1) per-call dispatch.
	dir := yhccl.PlanDir()
	cache, err := plan.Load(dir, node, p)
	if err != nil {
		fmt.Printf("no tuned plans for %s p=%d (%v)\nrun `make tune` first; continuing with the copy-policy sweep\n\n", node.Name, p, err)
	} else {
		table, err := cache.Table()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s p=%d: %d tuned plans (cache %s, checksum %s)\n",
			node.Name, p, len(cache.Plans), plan.FileName(node.Name, p), cache.Checksum)

		// The paper hand-tunes the small/large switch to 256 KB (§5.1); the
		// tuner re-derives it from the plans as the largest size the
		// parallel-reduction class still wins.
		if sw, ok := table.SwitchBytes(plan.Allreduce); ok {
			fmt.Printf("derived all-reduce switch: %d KB (paper's hand-tuned value: %d KB, bucket distance %d)\n\n",
				sw>>10, int64(coll.DefaultSwitchSmallBytes)>>10,
				plan.Bucket(coll.DefaultSwitchSmallBytes)-plan.Bucket(sw))
		}

		// Predicted vs measured: every plan's PredictedSeconds came from the
		// same steady-state harness the figures use, so re-measuring the
		// tuned dispatch reproduces it exactly — the cache is a memoization,
		// not an approximation.
		planner := coll.NewPlanner(table)
		fmt.Printf("%-9s %-28s %12s %12s  (all-reduce, NodeA p=64)\n", "msg", "plan", "predicted", "measured")
		for _, s := range []int64{64 << 10, 1 << 20, 16 << 20, 256 << 20} {
			entry := table.Lookup(plan.Allreduce, s)
			measured := bench.MeasureAllreduce(node, p, func(r *yhccl.Rank, cm *yhccl.Comm, sb, rb *yhccl.Buffer, n int64, op yhccl.Op, o yhccl.Options) {
				coll.TunedAllreduce(planner, r, cm, sb, rb, n, op, o)
			}, s, bench.NodeOptions(node))
			fmt.Printf("%6dKB  %-28s %10.3es %10.3es\n",
				s>>10, entry.Params.String(), entry.PredictedSeconds, measured)
		}
		fmt.Println()
	}

	// 2. The adaptive-copy decision surface. The socket-aware MA all-reduce
	// working set is W = 2sp + m*p*Imax; solving W > C gives the message
	// size where adaptive-copy starts using NT stores.
	imax := int64(256 << 10)
	C := node.AvailableCache(p)
	switchBytes := (C - int64(node.Sockets)*int64(p)*imax) / int64(2*p)
	fmt.Printf("%s: available cache C = %d MB, predicted NT switch at %d KB\n\n",
		node.Name, C>>20, switchBytes>>10)

	policies := []struct {
		name string
		pol  yhccl.Policy
	}{
		{"adaptive", yhccl.Adaptive},
		{"t-copy", yhccl.TCopy},
		{"nt-copy", yhccl.NTCopy},
		{"memmove", yhccl.Memmove},
	}

	fmt.Printf("%-9s", "msg")
	for _, pp := range policies {
		fmt.Printf(" %10s", pp.name)
	}
	fmt.Println(" (all-reduce us, NodeA p=64)")

	for s := int64(512 << 10); s <= 16<<20; s *= 2 {
		n := s / 8
		fmt.Printf("%6dKB ", s>>10)
		for _, pp := range policies {
			o := yhccl.Options{}.WithPolicy(pp.pol)
			m := yhccl.NewMachine(node, p, false)
			run := func() float64 {
				return m.MustRun(func(r *yhccl.Rank) {
					sb := r.PersistentBuffer("sb", n)
					rb := r.PersistentBuffer("rb", n)
					r.Warm(sb, 0, n)
					r.Warm(rb, 0, n)
					if err := yhccl.AllreduceAlg("socket-ma", r, sb, rb, n, yhccl.Sum, o); err != nil {
						panic(err)
					}
				})
			}
			run()
			fmt.Printf(" %9.0fu", run()*1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nadaptive follows t-copy below the switch and nt-copy above it")
}
