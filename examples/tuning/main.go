// Tuning: explore the adaptive-copy decision surface (Algorithm 1) — for
// each copy policy, sweep the message size through the W > C switch point
// and show where the NT stores start paying off, plus the analytically
// predicted switch point.
package main

import (
	"fmt"

	"yhccl"
)

func main() {
	node := yhccl.NodeA()
	const p = 64

	// The socket-aware MA all-reduce working set is W = 2sp + m*p*Imax;
	// solving W > C gives the message size where adaptive-copy starts
	// using NT stores.
	imax := int64(256 << 10)
	C := node.AvailableCache(p)
	switchBytes := (C - int64(node.Sockets)*int64(p)*imax) / int64(2*p)
	fmt.Printf("%s: available cache C = %d MB, predicted NT switch at %d KB\n\n",
		node.Name, C>>20, switchBytes>>10)

	policies := []struct {
		name string
		pol  yhccl.Policy
	}{
		{"adaptive", yhccl.Adaptive},
		{"t-copy", yhccl.TCopy},
		{"nt-copy", yhccl.NTCopy},
		{"memmove", yhccl.Memmove},
	}

	fmt.Printf("%-9s", "msg")
	for _, pp := range policies {
		fmt.Printf(" %10s", pp.name)
	}
	fmt.Println(" (all-reduce us, NodeA p=64)")

	for s := int64(512 << 10); s <= 16<<20; s *= 2 {
		n := s / 8
		fmt.Printf("%6dKB ", s>>10)
		for _, pp := range policies {
			o := yhccl.Options{}.WithPolicy(pp.pol)
			m := yhccl.NewMachine(node, p, false)
			run := func() float64 {
				return m.MustRun(func(r *yhccl.Rank) {
					sb := r.PersistentBuffer("sb", n)
					rb := r.PersistentBuffer("rb", n)
					r.Warm(sb, 0, n)
					r.Warm(rb, 0, n)
					if err := yhccl.AllreduceAlg("socket-ma", r, sb, rb, n, yhccl.Sum, o); err != nil {
						panic(err)
					}
				})
			}
			run()
			fmt.Printf(" %9.0fu", run()*1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nadaptive follows t-copy below the switch and nt-copy above it")
}
