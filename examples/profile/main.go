// Profile: the PMPI-style profiling tool of the paper's §5.1 — wrap an
// application's collectives, collect per-call simulated latency and memory
// traffic, and print the summary that tells you which collective, at which
// size, is worth switching to YHCCL.
package main

import (
	"fmt"
	"os"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/profile"
	"yhccl/internal/topo"
)

func main() {
	const p = 16
	m := mpi.NewMachine(topo.NodeA(), p, true)
	prof := profile.New(m)

	// A little synthetic "application": a time loop mixing collectives of
	// different sizes, the pattern a profiler would see in MiniAMR-like
	// codes.
	const big = int64(1 << 18)   // 2 MB
	const small = int64(1 << 10) // 8 KB
	m.MustRun(func(r *mpi.Rank) {
		grad := r.NewBuffer("grad", big)
		gsum := r.NewBuffer("gsum", big)
		flags := r.NewBuffer("flags", small)
		fsum := r.NewBuffer("fsum", small)
		for step := 0; step < 5; step++ {
			r.FillPattern(grad, float64(r.ID()+step))
			prof.Wrap(r, "allreduce(grad)", big*memmodel.ElemSize, func() {
				coll.AllreduceYHCCL(r, r.World(), grad, gsum, big, mpi.Sum, coll.Options{})
			})
			prof.Wrap(r, "allreduce(flags)", small*memmodel.ElemSize, func() {
				coll.AllreduceYHCCL(r, r.World(), flags, fsum, small, mpi.Sum, coll.Options{})
			})
			if step%2 == 0 {
				prof.Wrap(r, "bcast(config)", small*memmodel.ElemSize, func() {
					coll.BcastPipelined(r, r.World(), flags, small, 0, coll.Options{})
				})
			}
		}
	})

	fmt.Println("PMPI-style collective profile (16 ranks, NodeA, simulated):")
	prof.Fprint(os.Stdout)

	samples := prof.Samples()
	fmt.Printf("\n%d individual samples collected; first allreduce(grad): %.1f us, DAV %d MB\n",
		len(samples), samples[0].Seconds*1e6, samples[0].Counters.DAV()>>20)
}
