// MiniAMR: the adaptive-mesh-refinement proxy app of the paper's Fig. 17 —
// a 3-D stencil whose refinement step all-reduces a large bookkeeping
// message every timestep. Prints the Open MPI vs YHCCL totals across node
// counts.
package main

import (
	"fmt"
	"log"

	"yhccl/internal/apps/miniamr"
	"yhccl/internal/cluster"
)

func main() {
	fmt.Println("MiniAMR (refine=40000, 20 timesteps, 64 ranks/node)")
	fmt.Printf("%-7s %12s %12s %9s\n", "nodes", "OpenMPI (s)", "YHCCL (s)", "speedup")
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := miniamr.DefaultConfig(nodes)
		cfg.Timesteps = 20
		open, err := miniamr.Run(cfg, cluster.LeaderRing)
		if err != nil {
			log.Fatal(err)
		}
		yh, err := miniamr.Run(cfg, cluster.YHCCLHierarchical)
		if err != nil {
			log.Fatal(err)
		}
		if open.Checksum != yh.Checksum {
			log.Fatalf("validation checksums differ: %v vs %v", open.Checksum, yh.Checksum)
		}
		fmt.Printf("%-7d %12.1f %12.1f %8.2fx\n",
			nodes, open.TotalTime, yh.TotalTime, open.TotalTime/yh.TotalTime)
	}
	fmt.Println("stencil numerics validated: identical checksums under both libraries")
}
