// DNN training: the paper's Fig. 18 workload — data-parallel CNN training
// on Cluster C, ResNet-50 and VGG-16, Open MPI vs YHCCL gradient
// all-reduce. Also runs a real miniature SGD through the actual collective
// to validate numerics.
package main

import (
	"fmt"

	"yhccl/internal/apps/dnn"
	"yhccl/internal/cluster"
	"yhccl/internal/coll"
	"yhccl/internal/topo"
)

func main() {
	for _, model := range []dnn.Model{dnn.ResNet50(), dnn.VGG16()} {
		fmt.Printf("%s (%d M parameters)\n", model.Name, model.Params/1_000_000)
		fmt.Printf("  %-7s %14s %14s %9s\n", "nodes", "OpenMPI img/s", "YHCCL img/s", "speedup")
		for _, nodes := range []int{1, 4, 16, 64, 256} {
			cfg := dnn.DefaultConfig(nodes)
			open, err := dnn.Throughput(cfg, model, cluster.FlatRing)
			if err != nil {
				panic(err)
			}
			yh, err := dnn.Throughput(cfg, model, cluster.YHCCLHierarchical)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-7d %14.1f %14.1f %8.2fx\n",
				nodes, open.ImagesPerSecond, yh.ImagesPerSecond,
				yh.ImagesPerSecond/open.ImagesPerSecond)
		}
		fmt.Println()
	}

	losses := dnn.TrainValidation(topo.NodeC(), 8, 40, coll.AllreduceYHCCL)
	fmt.Printf("validation SGD through the real collective: loss %.1f -> %.4f over %d steps\n",
		losses[0], losses[len(losses)-1], len(losses))
}
