// Schedules: the paper's §3.1 formalism live — express reduction
// algorithms as reduction trees, verify the Theorem 3.1 lower bound by
// exhaustive search, then execute the DPML and movement-avoiding schedules
// through the generic schedule executor and compare their measured copy
// volume and simulated time.
package main

import (
	"fmt"
	"log"

	"yhccl/internal/coll"
	"yhccl/internal/memmodel"
	"yhccl/internal/mpi"
	"yhccl/internal/schedule"
	"yhccl/internal/topo"
)

func main() {
	// 1. The formal optimization problem: exhaustive minimum copy volume
	// per tree (in slice units) for small p.
	fmt.Println("Theorem 3.1 (exhaustive verification):")
	for p := 2; p <= 5; p++ {
		fmt.Printf("  p=%d: min copy volume over all valid trees = %d units (theorem: 2)\n",
			p, schedule.MinTreeCopyUnits(p))
	}

	// 2. The two named schedules, formally.
	const p = 8
	fmt.Printf("\nschedules at p=%d (copy units per schedule, lower is better):\n", p)
	fmt.Printf("  DPML: %d units\n", schedule.DPML(p).TotalCopyUnits())
	fmt.Printf("  MA  : %d units (the optimum 2p)\n", schedule.MA(p).TotalCopyUnits())

	// 3. Execute both through the generic engine and compare measured V
	// and simulated time.
	const n = 1 << 15 // 256 KB blocks
	for _, sc := range []struct {
		name  string
		sched schedule.Schedule
	}{
		{"DPML", schedule.DPML(p)},
		{"MA", schedule.MA(p)},
	} {
		m := mpi.NewMachine(topo.NodeA(), p, true)
		elapsed := m.MustRun(func(r *mpi.Rank) {
			sb := r.NewBuffer("sb", int64(p)*n)
			rb := r.NewBuffer("rb", n)
			r.FillPattern(sb, float64(r.ID()))
			if err := coll.ReduceScatterScheduled(r, r.World(), sc.sched, sb, rb, n, mpi.Sum, coll.Options{}); err != nil {
				log.Fatal(err)
			}
			// Spot-check the reduction result.
			want := float64(p)*float64(int64(r.ID())*n) + float64(p*(p-1))/2
			if got := rb.Slice(0, 1)[0]; got != want {
				log.Fatalf("rank %d: rb[0] = %v, want %v", r.ID(), got, want)
			}
		})
		c := m.Model.Counters()
		fmt.Printf("\n%s executed: %.0f us simulated, copy volume V = %d KB, DAV = %d KB\n",
			sc.name, elapsed*1e6, c.CopyVolume>>10, c.DAV()>>10)
	}
	s := int64(p) * n * memmodel.ElemSize
	fmt.Printf("\n(2s = %d KB — the MA run should match it exactly)\n", 2*s>>10)
}
