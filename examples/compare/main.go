// Compare: sweep one message size range and print every registered
// all-reduce algorithm side by side — a miniature Fig. 11 on your terminal.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"yhccl"
)

func main() {
	node := yhccl.NodeB()
	const p = 48

	algos := yhccl.AlgorithmNames("allreduce")
	sizes := []int64{64 << 10, 512 << 10, 4 << 20, 32 << 20}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "msg\t")
	for _, a := range algos {
		fmt.Fprintf(w, "%s\t", a)
	}
	fmt.Fprintln(w)

	for _, s := range sizes {
		n := s / 8
		fmt.Fprintf(w, "%dKB\t", s>>10)
		for _, a := range algos {
			m := yhccl.NewMachine(node, p, false)
			run := func() float64 {
				return m.MustRun(func(r *yhccl.Rank) {
					sb := r.PersistentBuffer("sb", n)
					rb := r.PersistentBuffer("rb", n)
					r.Warm(sb, 0, n)
					r.Warm(rb, 0, n)
					if err := yhccl.AllreduceAlg(a, r, sb, rb, n, yhccl.Sum, yhccl.Options{}); err != nil {
						panic(err)
					}
				})
			}
			run() // warm-up
			fmt.Fprintf(w, "%.0fus\t", run()*1e6)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\n(lower is better; yhccl switches algorithms at the 256 KB boundary)")
}
