// Serving: multi-tenant admission and placement on one simulated NodeA.
// A seeded open-loop stream of mixed tenants — DNN all-reduce storms,
// miniAMR halo phases, OSU micro-flows and one fault-injected chaos
// tenant — is scheduled under each placement policy; co-tenants contend
// for socket bandwidth and LLC capacity, and the chaos tenant must
// recover without perturbing its neighbors.
package main

import (
	"fmt"

	"yhccl/internal/serve"
	"yhccl/internal/topo"
)

func main() {
	node := topo.NodeA()
	mix := append(serve.DefaultMix(), serve.JobSpec{
		Name:       "chaos-tenant",
		Collective: "allreduce",
		MsgBytes:   256 << 10,
		Calls:      4,
		Ranks:      4,
		Placement:  serve.PlacePack,
		Weight:     0.5,
		FaultSeed:  3,
	})
	const (
		seed = 42
		jobs = 40
	)
	rates := []float64{100, 400, 1600}

	for _, placement := range []serve.Placement{serve.PlacePack, serve.PlaceSpread, serve.PlaceAuto} {
		points, err := serve.Sweep(node, placement, mix, seed, jobs, rates, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== placement: %s ==\n", placement)
		fmt.Print(serve.Render(points))
		last := points[len(points)-1]
		fmt.Printf("outcomes at rate %.0f: %d clean", last.Rate, last.Outcomes["clean-pass"])
		for out, n := range last.Outcomes {
			if out != "clean-pass" {
				fmt.Printf(", %d %s", n, out)
			}
		}
		fmt.Printf(" (%d undiagnosed)\n\n", last.Undiag)
	}

	// Replay: the schedule is a pure function of the seed — print the
	// first admission decisions of the saturating auto-placement point.
	points, err := serve.Sweep(node, serve.PlaceAuto, mix, seed, jobs, rates[len(rates)-1:], nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("first admission events at the saturating point (deterministic replay):")
	for i, line := range points[0].EventLog {
		if i >= 10 {
			break
		}
		fmt.Println(" ", line)
	}
}
