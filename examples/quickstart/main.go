// Quickstart: run YHCCL's all-reduce on a simulated 64-core NodeA with
// real data, verify the result, and print the simulated latency and the
// memory-traffic counters behind it.
package main

import (
	"fmt"
	"log"

	"yhccl"
)

func main() {
	node := yhccl.NodeA()
	const p = 64
	const elems = 1 << 20 // 8 MB message

	m := yhccl.NewMachine(node, p, true)

	// Every rank contributes sb[i] = rank + i; the all-reduced rb[i] must
	// be p*i + p(p-1)/2.
	makespan := m.MustRun(func(r *yhccl.Rank) {
		sb := r.NewBuffer("sb", elems)
		rb := r.NewBuffer("rb", elems)
		r.FillPattern(sb, float64(r.ID()))

		yhccl.Allreduce(r, sb, rb, elems, yhccl.Sum, yhccl.Options{})

		for i := int64(0); i < elems; i += 4097 {
			want := float64(p)*float64(i) + float64(p*(p-1))/2
			if got := rb.Slice(i, 1)[0]; got != want {
				log.Fatalf("rank %d: rb[%d] = %v, want %v", r.ID(), i, got, want)
			}
		}
	})

	c := m.Model.Counters()
	fmt.Printf("all-reduce of %d MB on %s with %d ranks\n", elems*8>>20, node.Name, p)
	fmt.Printf("  simulated latency : %.1f us\n", makespan*1e6)
	fmt.Printf("  data access volume: %d MB (loads+stores)\n", c.DAV()>>20)
	fmt.Printf("  DRAM traffic      : %d MB\n", c.DRAMTraffic>>20)
	fmt.Printf("  NT-store bytes    : %d MB\n", c.NTStoreBytes>>20)
	fmt.Printf("  synchronizations  : %d\n", c.SyncCount)
	fmt.Println("result verified on every rank")
}
