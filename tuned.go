package yhccl

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"yhccl/internal/coll"
	"yhccl/internal/plan"
)

// Tuned-plan integration: the persistent plan cache produced by the offline
// synthesizer (internal/tune, driven by `yhcclbench -tune` / `make tune`)
// is loaded once per machine and consulted per call in O(1) with zero
// allocations. A missing, corrupted or out-of-date cache degrades
// gracefully to the hand-tuned switch — a warning is surfaced once per
// process per cache file, never a panic.

// PlanDir returns the repository's default plans directory (the `plans/`
// tree next to go.mod), or "" when not running inside the repository.
func PlanDir() string { return plan.DefaultDir() }

var (
	planWarn sync.Map // cache path -> struct{}, one warning per file
	planMemo sync.Map // cache path -> *coll.Planner, parsed once per process
)

// attachDefaultPlans is the comm-init hook behind NewMachine: if the
// repository's plans/ directory holds a tuned cache for this exact
// (topology, rank count), attach it so Tuned* dispatch works out of the
// box. The parsed planner is memoized per cache file, so machines created
// in a loop share one load; absent or invalid caches leave the machine
// untuned (invalid ones warn once, matching AttachPlans).
func attachDefaultPlans(m *Machine) {
	dir := PlanDir()
	if dir == "" {
		return
	}
	node, p := m.Node, m.Size()
	key := dir + "/" + plan.FileName(node.Name, p)
	if pl, ok := planMemo.Load(key); ok {
		m.SetTuning(pl.(*coll.Planner))
		return
	}
	cache, err := plan.Load(dir, node, p)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			warnPlanOnce(dir, node.Name, p, err)
		}
		return
	}
	table, err := cache.Table()
	if err != nil {
		warnPlanOnce(dir, node.Name, p, err)
		return
	}
	pl := coll.NewPlanner(table)
	planMemo.Store(key, pl)
	m.SetTuning(pl)
}

// AttachPlans loads the tuned-plan cache for the machine's topology and
// rank count from dir ("" selects PlanDir) and attaches it, so the Tuned*
// entry points dispatch through it. Loading happens here, once, at machine
// setup — never per collective call.
//
// A missing cache is not an error: the machine is left untuned and Tuned*
// falls back to the hand-tuned switch. A cache that exists but fails
// validation (version bump, topology recalibration, checksum mismatch)
// degrades the same way, with one warning per process on stderr naming the
// cause; the returned error carries it for callers that want to fail hard.
func AttachPlans(m *Machine, dir string) error {
	if dir == "" {
		dir = PlanDir()
		if dir == "" {
			return nil
		}
	}
	node, p := m.Node, m.Size()
	cache, err := plan.Load(dir, node, p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		warnPlanOnce(dir, node.Name, p, err)
		return err
	}
	table, err := cache.Table()
	if err != nil {
		warnPlanOnce(dir, node.Name, p, err)
		return err
	}
	m.SetTuning(coll.NewPlanner(table))
	return nil
}

func warnPlanOnce(dir, topology string, ranks int, err error) {
	key := dir + "/" + plan.FileName(topology, ranks)
	if _, dup := planWarn.LoadOrStore(key, struct{}{}); !dup {
		fmt.Fprintf(os.Stderr, "yhccl: ignoring tuned-plan cache %s: %v (falling back to hand-tuned switch)\n", key, err)
	}
}

// TunedAllreduce dispatches through the machine's attached plan table,
// falling back to the hand-tuned switch when no plan covers the call.
//
// Deprecated: use Exec with Req{Collective: "allreduce", Tuned: true}.
func TunedAllreduce(r *Rank, sb, rb *Buffer, n int64, op Op, o Options) {
	MustExec(r, Req{Collective: "allreduce", Tuned: true, Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// TunedReduceScatter dispatches a reduce-scatter through the plan table.
//
// Deprecated: use Exec with Req{Collective: "reduce-scatter", Tuned: true}.
func TunedReduceScatter(r *Rank, sb, rb *Buffer, n int64, op Op, o Options) {
	MustExec(r, Req{Collective: "reduce-scatter", Tuned: true, Send: sb, Recv: rb, Count: n, Op: op, Options: o})
}

// TunedReduce dispatches a rooted reduce through the plan table.
//
// Deprecated: use Exec with Req{Collective: "reduce", Tuned: true}.
func TunedReduce(r *Rank, sb, rb *Buffer, n int64, op Op, root int, o Options) {
	MustExec(r, Req{Collective: "reduce", Tuned: true, Send: sb, Recv: rb, Count: n, Op: op, Root: root, Options: o})
}

// TunedBcast dispatches a broadcast through the plan table.
//
// Deprecated: use Exec with Req{Collective: "bcast", Tuned: true}.
func TunedBcast(r *Rank, buf *Buffer, n int64, root int, o Options) {
	MustExec(r, Req{Collective: "bcast", Tuned: true, Send: buf, Count: n, Root: root, Options: o})
}

// TunedAllgather dispatches an all-gather through the plan table.
//
// Deprecated: use Exec with Req{Collective: "allgather", Tuned: true}.
func TunedAllgather(r *Rank, sb, rb *Buffer, n int64, o Options) {
	MustExec(r, Req{Collective: "allgather", Tuned: true, Send: sb, Recv: rb, Count: n, Options: o})
}

func plannerOf(r *Rank) *coll.Planner { return coll.PlannerOf(r.Machine()) }
