module yhccl

go 1.23
