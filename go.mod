module yhccl

go 1.22
